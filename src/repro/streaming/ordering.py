"""Event-time ordering: watermarks, reordering and late-event policies.

Every engine in this library consumes events in non-decreasing timestamp
order — the contract the evaluation plans, the sliding-window statistics
and the deduplication clocks are all built on.  Real deployments cannot
promise sorted *arrival*: network fan-in, partitioned brokers and retried
producers all deliver events out of order.  This module is the adapter
between the two worlds, the standard event-time machinery of streaming
systems (Millwheel/Flink-style):

* a **watermark** is a promise about completeness — "no event with
  timestamp below ``w`` will arrive anymore".  :class:`WatermarkGenerator`
  subclasses derive that promise either structurally
  (:class:`BoundedOutOfOrdernessWatermarks`: the stream is disordered by at
  most ``max_lateness`` time units) or from in-band punctuation
  (:class:`PunctuatedWatermarks`: designated events carry the watermark);
* the :class:`ReorderBuffer` holds arriving events in a heap and releases
  them **in timestamp order** once the watermark passes them, so everything
  downstream keeps its sorted-input contract;
* events arriving *behind* the watermark are **late** — the promise was
  already spent — and are handled by a configurable policy: count-and-drop
  (``"drop"``), divert to a side output (``"side-output"``), or fail fast
  (``"raise"``).

The buffer is deliberately deterministic: events are released ordered by
``(timestamp, sequence_number)`` — exactly the order of
:class:`~repro.events.InMemoryEventStream`'s sort — so a disordered stream
pushed through a sufficiently tolerant buffer reproduces the sorted replay
*byte for byte* (the differential property ``tests/test_equivalence.py``
enforces).  It is also plain picklable state: the streaming pipeline
snapshots in-flight buffer contents into its checkpoints so a kill/resume
with buffered out-of-order events stays exactly-once.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StreamingError
from repro.events import Event

#: The late-event policy names accepted by :class:`ReorderBuffer` and the CLI.
LATE_POLICIES = ("drop", "side-output", "raise")


class WatermarkGenerator:
    """Derives the event-time low watermark from the arriving events.

    The watermark is monotone: :meth:`observe` may only ever advance it.
    Subclasses implement :meth:`_watermark_for`, returning a candidate
    watermark for one arriving event (or ``None`` when the event carries no
    watermark information).
    """

    name: str = "watermarks"

    def __init__(self) -> None:
        self._watermark = float("-inf")

    @property
    def current_watermark(self) -> float:
        """The low watermark promised so far (``-inf`` before any event)."""
        return self._watermark

    def observe(self, event: Event) -> Optional[float]:
        """Account for one arriving event.

        Returns the new watermark when the event advanced it, ``None``
        otherwise — the caller uses the return value to decide whether a
        release pass is worthwhile.
        """
        candidate = self._watermark_for(event)
        if candidate is not None and candidate > self._watermark:
            self._watermark = candidate
            return candidate
        return None

    def _watermark_for(self, event: Event) -> Optional[float]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} watermark={self._watermark:g}>"


class BoundedOutOfOrdernessWatermarks(WatermarkGenerator):
    """Watermarks for streams disordered by at most ``max_lateness``.

    The structural assumption of most real feeds: an event may arrive up to
    ``max_lateness`` stream-time units after events with greater timestamps.
    The watermark therefore trails the maximum timestamp seen by exactly
    that slack; an event behind it broke the assumption and is late.
    ``max_lateness=0`` asserts the stream is already sorted (any inversion
    is late).
    """

    name = "bounded-out-of-orderness"

    def __init__(self, max_lateness: float):
        if max_lateness < 0:
            raise StreamingError(
                f"max_lateness must be non-negative, got {max_lateness!r}"
            )
        super().__init__()
        self.max_lateness = float(max_lateness)

    def _watermark_for(self, event: Event) -> Optional[float]:
        return event.timestamp - self.max_lateness

    def __repr__(self) -> str:
        return (
            f"<BoundedOutOfOrdernessWatermarks max_lateness={self.max_lateness:g} "
            f"watermark={self._watermark:g}>"
        )


class PayloadWatermarkExtractor:
    """Read a punctuation watermark from an event's payload field.

    A module-level class (not a closure) so punctuated configurations stay
    picklable for checkpoints and worker processes.
    """

    def __init__(self, field: str = "watermark"):
        self.field = field

    def __call__(self, event: Event) -> Optional[float]:
        value = event.get(self.field)
        return None if value is None else float(value)

    def __repr__(self) -> str:
        return f"PayloadWatermarkExtractor({self.field!r})"


class PunctuatedWatermarks(WatermarkGenerator):
    """Watermarks carried in-band by designated events.

    ``extract`` maps an event to the watermark it punctuates (or ``None``
    for ordinary data events) — e.g. :class:`PayloadWatermarkExtractor`
    reads a payload field written by the upstream producer.  Between
    punctuations the watermark holds still, so the reorder buffer absorbs
    arbitrary disorder until the producer declares progress.
    """

    name = "punctuated"

    def __init__(self, extract: Callable[[Event], Optional[float]]):
        if not callable(extract):
            raise StreamingError("PunctuatedWatermarks requires a callable extractor")
        super().__init__()
        self._extract = extract

    def _watermark_for(self, event: Event) -> Optional[float]:
        return self._extract(event)


class ReorderBuffer:
    """Admit disordered events; release them in timestamp order.

    Parameters
    ----------
    watermarks:
        A :class:`WatermarkGenerator`, or a plain number as shorthand for
        :class:`BoundedOutOfOrdernessWatermarks` with that ``max_lateness``.
    late_policy:
        What to do with an event arriving behind the watermark:
        ``"drop"`` (count it in :attr:`late_events` and discard),
        ``"side-output"`` (count it and hand it to ``late_sink``), or
        ``"raise"`` (fail the ingestion with a :class:`StreamingError`).
    late_sink:
        A callable receiving each late event under the side-output policy
        (e.g. a bound ``list.append`` or a JSONL writer's ``write``).

    :meth:`push` returns the events the arrival released — already in
    ``(timestamp, sequence_number)`` order — and :meth:`flush` drains the
    remainder at end-of-stream.  The whole object is picklable, which is how
    the pipeline checkpoints in-flight buffer contents.
    """

    def __init__(
        self,
        watermarks: "WatermarkGenerator | float",
        late_policy: str = "drop",
        late_sink: Optional[Callable[[Event], None]] = None,
    ):
        if isinstance(watermarks, (int, float)):
            watermarks = BoundedOutOfOrdernessWatermarks(float(watermarks))
        if not isinstance(watermarks, WatermarkGenerator):
            raise StreamingError(
                f"watermarks must be a WatermarkGenerator or a max_lateness "
                f"number, got {type(watermarks).__name__}"
            )
        if late_policy not in LATE_POLICIES:
            raise StreamingError(
                f"unknown late policy {late_policy!r}; expected one of "
                f"{sorted(LATE_POLICIES)}"
            )
        if late_policy == "side-output" and not callable(late_sink):
            raise StreamingError(
                "late_policy='side-output' requires a callable late_sink"
            )
        self.watermarks = watermarks
        self.late_policy = late_policy
        self._late_sink = late_sink
        #: Optional late-event observer ``(event, policy_name) -> None``,
        #: called for every arrival behind the watermark (including ones
        #: about to raise) — the decision-log hook.  Process-local: it is
        #: excluded from pickled state (see ``__getstate__``) and must be
        #: re-attached after a checkpoint restore.
        self.on_late: Optional[Callable[[Event, str], None]] = None
        # Heap entries are (timestamp, sequence_number, tiebreak, event): the
        # first two give the deterministic release order, the running
        # tiebreak keeps comparisons from ever reaching the Event itself.
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._tiebreak = 0
        self.late_events = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """The current event-time low watermark."""
        return self.watermarks.current_watermark

    @property
    def depth(self) -> int:
        """How many admitted events are still awaiting release."""
        return len(self._heap)

    def pending(self) -> List[Event]:
        """The buffered events in release order (without consuming them)."""
        return [entry[3] for entry in sorted(self._heap)]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, event: Event) -> List[Event]:
        """Admit one arrival; return the events it released, in order."""
        if event.timestamp < self.watermarks.current_watermark:
            self._handle_late(event)
            return []
        heapq.heappush(
            self._heap,
            (event.timestamp, event.sequence_number, self._tiebreak, event),
        )
        self._tiebreak += 1
        if len(self._heap) > self.max_depth:
            self.max_depth = len(self._heap)
        watermark = self.watermarks.observe(event)
        if watermark is None:
            return []
        return self._release(watermark)

    def flush(self) -> List[Event]:
        """End-of-stream: release everything still buffered, in order."""
        return self._release(float("inf"))

    def _release(self, watermark: float) -> List[Event]:
        # Strictly below the watermark: an event with ts == watermark is
        # *not* late (the late check is strict too), so an equal-timestamp
        # straggler may still arrive — releasing the boundary timestamp now
        # would emit it ahead of a lower-sequence peer and break the
        # deterministic (timestamp, sequence_number) release order.
        released: List[Event] = []
        while self._heap and self._heap[0][0] < watermark:
            released.append(heapq.heappop(self._heap)[3])
        return released

    def __getstate__(self) -> dict:
        # The buffer is pickled into checkpoints; observers are live
        # process-local callbacks (often bound to a DecisionLog file
        # handle) and must not travel with the state.
        state = self.__dict__.copy()
        state["on_late"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints from builds that predate the observer lack the key.
        self.__dict__.setdefault("on_late", None)

    def _handle_late(self, event: Event) -> None:
        if self.on_late is not None:
            self.on_late(event, self.late_policy)
        if self.late_policy == "raise":
            raise StreamingError(
                f"late event: {event!r} is behind the watermark "
                f"{self.watermarks.current_watermark:g} (increase max_lateness "
                "or choose a tolerant late policy)"
            )
        self.late_events += 1
        if self.late_policy == "side-output":
            self._late_sink(event)  # type: ignore[misc]

    def __repr__(self) -> str:
        return (
            f"<ReorderBuffer depth={len(self._heap)} "
            f"watermark={self.watermark:g} late={self.late_events} "
            f"policy={self.late_policy}>"
        )


def reorder_events(
    events: Iterable[Event],
    max_lateness: float,
    late_policy: str = "drop",
    late_sink: Optional[Callable[[Event], None]] = None,
) -> List[Event]:
    """One-shot offline reordering of a disordered event collection.

    Convenience for the batch ingestion paths (and tests): push every event
    through a fresh :class:`ReorderBuffer` and flush — the list comes back
    sorted by ``(timestamp, sequence_number)`` minus whatever the late
    policy removed.
    """
    buffer = ReorderBuffer(max_lateness, late_policy=late_policy, late_sink=late_sink)
    ordered: List[Event] = []
    for event in events:
        ordered.extend(buffer.push(event))
    ordered.extend(buffer.flush())
    return ordered


def bounded_shuffle(
    events: Sequence[Event], slack: float, seed: int = 0
) -> List[Event]:
    """Seeded bounded disorder: displace each event by less than ``slack``.

    Each event is sorted by ``timestamp + U(0, slack)`` (ties broken by the
    original position, so the shuffle is stable and deterministic per seed).
    Any event then arrives after at most ``slack`` stream-time units of
    later events, which makes the result exactly recoverable by a
    :class:`ReorderBuffer` with ``max_lateness >= slack`` — the workload
    generator of the disorder differential tests and the
    ``--shuffle-slack`` smoke runs.
    """
    if slack < 0:
        raise StreamingError(f"shuffle slack must be non-negative, got {slack!r}")
    rng = random.Random(seed)
    keyed = [
        (event.timestamp + rng.uniform(0.0, slack), index, event)
        for index, event in enumerate(events)
    ]
    keyed.sort(key=lambda entry: (entry[0], entry[1]))
    return [event for _, _, event in keyed]

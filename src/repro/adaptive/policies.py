"""Reoptimizing decision policies (implementations of the function D).

Each policy answers a single question on every monitoring period: *should
the plan-generation algorithm be re-invoked now?*  The four policies
compared in the paper's evaluation are implemented:

* :class:`InvariantBasedPolicy` — the paper's contribution.
* :class:`ConstantThresholdPolicy` — ZStream's baseline.
* :class:`UnconditionalPolicy` — the lazy-NFA baseline.
* :class:`StaticPolicy` — the non-adaptive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.adaptive.distance import DistanceEstimator, FixedDistance
from repro.adaptive.invariants import (
    Invariant,
    InvariantSet,
    SelectionStrategy,
    build_invariant_set,
)
from repro.errors import AdaptationError
from repro.optimizer.recorder import PlanGenerationResult
from repro.statistics import StatisticsSnapshot


@dataclass
class PolicyDecision:
    """Outcome of one invocation of a decision policy."""

    reoptimize: bool
    reason: str = ""
    violated_invariant: Optional[Invariant] = None
    details: Dict[str, float] = field(default_factory=dict)


class ReoptimizationPolicy:
    """Base class for reoptimizing decision functions."""

    #: Name used in experiment reports (matches the paper's legends).
    name: str = "policy"

    def should_reoptimize(self, snapshot: StatisticsSnapshot) -> PolicyDecision:
        """The decision function D: evaluate against current statistics."""
        raise NotImplementedError

    def on_plan_installed(
        self, result: PlanGenerationResult, snapshot: StatisticsSnapshot
    ) -> None:
        """Notification that a (new) plan is now in effect.

        Called for the initial plan and after every replacement so policies
        can rebuild their internal state (invariants, reference snapshots).
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class StaticPolicy(ReoptimizationPolicy):
    """Never reoptimize: the non-adaptive "static plan" baseline."""

    name = "static"

    def should_reoptimize(self, snapshot: StatisticsSnapshot) -> PolicyDecision:
        return PolicyDecision(reoptimize=False, reason="static policy never adapts")


class UnconditionalPolicy(ReoptimizationPolicy):
    """Always reoptimize: the baseline of the tree-based / lazy NFA paper.

    The plan-generation algorithm is re-invoked on every monitoring period
    regardless of whether anything changed; the detection–adaptation loop
    will still only *install* the new plan if it is better, but the full
    generation cost is paid every time.
    """

    name = "unconditional"

    def should_reoptimize(self, snapshot: StatisticsSnapshot) -> PolicyDecision:
        return PolicyDecision(reoptimize=True, reason="unconditional reoptimization")


class ConstantThresholdPolicy(ReoptimizationPolicy):
    """ZStream's baseline: reoptimize when any statistic drifts by more than ``t``.

    The reference values are the statistics observed when the current plan
    was installed.  A deviation of at least ``threshold`` (relative) in any
    monitored arrival rate or selectivity triggers reoptimization.
    """

    name = "constant-threshold"

    def __init__(self, threshold: float):
        if threshold < 0:
            raise AdaptationError("threshold must be >= 0")
        self._threshold = float(threshold)
        self._reference: Optional[StatisticsSnapshot] = None

    @property
    def threshold(self) -> float:
        return self._threshold

    def on_plan_installed(
        self, result: PlanGenerationResult, snapshot: StatisticsSnapshot
    ) -> None:
        self._reference = snapshot

    def should_reoptimize(self, snapshot: StatisticsSnapshot) -> PolicyDecision:
        if self._reference is None:
            return PolicyDecision(
                reoptimize=True, reason="no reference statistics yet"
            )
        deviation = snapshot.max_relative_deviation(self._reference)
        if deviation >= self._threshold:
            return PolicyDecision(
                reoptimize=True,
                reason=f"max relative deviation {deviation:.3f} >= threshold {self._threshold:.3f}",
                details={"deviation": deviation},
            )
        return PolicyDecision(
            reoptimize=False,
            reason=f"max relative deviation {deviation:.3f} < threshold {self._threshold:.3f}",
            details={"deviation": deviation},
        )


class InvariantBasedPolicy(ReoptimizationPolicy):
    """The invariant-based reoptimizing decision function (Section 3).

    Parameters
    ----------
    k:
        Number of conditions selected per building block (the K-invariant
        method).  ``k = 1`` is the basic method; ``k <= 0`` selects every
        deciding condition (Theorem 2's iff variant).
    distance:
        Minimal relative distance ``d`` applied to every invariant, or a
        :class:`DistanceEstimator` computing it per plan (e.g. the average
        relative difference heuristic).
    strategy:
        Invariant selection strategy (default: tightest condition).
    """

    name = "invariant"

    def __init__(
        self,
        k: int = 1,
        distance: "float | DistanceEstimator" = 0.0,
        strategy: Optional[SelectionStrategy] = None,
    ):
        self._k = int(k)
        if isinstance(distance, DistanceEstimator):
            self._distance_estimator = distance
        else:
            self._distance_estimator = FixedDistance(float(distance))
        self._strategy = strategy
        self._invariants: Optional[InvariantSet] = None
        self._current_distance: float = 0.0

    @property
    def k(self) -> int:
        return self._k

    @property
    def invariants(self) -> Optional[InvariantSet]:
        """The invariant set currently being verified (None before the first plan)."""
        return self._invariants

    @property
    def current_distance(self) -> float:
        """The distance in effect for the current invariant set."""
        return self._current_distance

    def on_plan_installed(
        self, result: PlanGenerationResult, snapshot: StatisticsSnapshot
    ) -> None:
        self._current_distance = self._distance_estimator.distance_for(result)
        self._invariants = build_invariant_set(
            result,
            k=self._k,
            distance=self._current_distance,
            strategy=self._strategy,
        )

    def observe_adaptation(self, previous_cost: float, new_cost: float) -> None:
        """Forward adaptation feedback to the distance estimator."""
        self._distance_estimator.observe_adaptation(previous_cost, new_cost)

    def should_reoptimize(self, snapshot: StatisticsSnapshot) -> PolicyDecision:
        if self._invariants is None:
            return PolicyDecision(reoptimize=True, reason="no invariants built yet")
        violated = self._invariants.first_violated(snapshot)
        if violated is None:
            return PolicyDecision(
                reoptimize=False,
                reason=f"all {len(self._invariants)} invariants hold",
                details={"num_invariants": float(len(self._invariants))},
            )
        return PolicyDecision(
            reoptimize=True,
            reason=f"invariant violated: {violated.describe()}",
            violated_invariant=violated,
            details={"num_invariants": float(len(self._invariants))},
        )

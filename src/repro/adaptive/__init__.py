"""Adaptive core: the paper's contribution.

This package implements the reoptimizing decision functions compared in the
paper and the invariant machinery behind the proposed method:

* :class:`Invariant` / :class:`InvariantSet` — deciding conditions selected
  for runtime verification, with optional minimal distance ``d``.
* :class:`InvariantBasedPolicy` — the paper's method (Section 3), including
  the K-invariant extension and distance-based invariants.
* :class:`ConstantThresholdPolicy` — the ZStream baseline (reoptimize when
  any statistic drifts by more than a threshold ``t``).
* :class:`UnconditionalPolicy` — the lazy-NFA baseline (reoptimize every
  monitoring period).
* :class:`StaticPolicy` — never reoptimize (the "static plan" baseline).
* :class:`AdaptationController` — drives the detection–adaptation loop
  (Algorithm 1): polls statistics, asks the policy, invokes the planner,
  and installs better plans.
"""

from repro.adaptive.invariants import (
    Invariant,
    InvariantSet,
    SelectionStrategy,
    TightestConditionStrategy,
    ViolationProbabilityStrategy,
    build_invariant_set,
)
from repro.adaptive.distance import (
    DistanceEstimator,
    FixedDistance,
    AverageRelativeDifferenceDistance,
    average_relative_difference,
)
from repro.adaptive.policies import (
    ReoptimizationPolicy,
    InvariantBasedPolicy,
    ConstantThresholdPolicy,
    UnconditionalPolicy,
    StaticPolicy,
    PolicyDecision,
)
from repro.adaptive.controller import AdaptationController, AdaptationRecord

__all__ = [
    "Invariant",
    "InvariantSet",
    "SelectionStrategy",
    "TightestConditionStrategy",
    "ViolationProbabilityStrategy",
    "build_invariant_set",
    "DistanceEstimator",
    "FixedDistance",
    "AverageRelativeDifferenceDistance",
    "average_relative_difference",
    "ReoptimizationPolicy",
    "InvariantBasedPolicy",
    "ConstantThresholdPolicy",
    "UnconditionalPolicy",
    "StaticPolicy",
    "PolicyDecision",
    "AdaptationController",
    "AdaptationRecord",
]

"""Minimal-distance estimation for distance-based invariants (Section 3.4).

The minimal distance ``d`` controls how much an invariant's two sides must
diverge before a violation is declared.  The paper identifies three ways of
choosing ``d``:

1. parameter scanning (implemented by the experiment harness — see
   :mod:`repro.experiments.distance_sweep`),
2. the *average relative difference* heuristic, implemented here, and
3. meta-adaptive tuning, implemented here in a simple form
   (:class:`MetaAdaptiveDistance`) as the paper's future-work direction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import AdaptationError
from repro.optimizer.recorder import DecidingConditionSet, PlanGenerationResult
from repro.statistics import StatisticsSnapshot


def average_relative_difference(
    condition_sets: Iterable[DecidingConditionSet],
    snapshot: StatisticsSnapshot,
) -> float:
    """The davg heuristic of Section 3.4.

    Averages, over every deciding condition recorded during plan
    generation, the relative difference between the two sides of the
    inequality::

        d = AVG( |f2(stat2) - f1(stat1)| / min(f1(stat1), f2(stat2)) )

    Returns 0.0 when no conditions were recorded (e.g. for single-item
    patterns), which degenerates to the basic method.
    """
    differences: List[float] = []
    for condition_set in condition_sets:
        for condition in condition_set:
            differences.append(condition.relative_difference(snapshot))
    if not differences:
        return 0.0
    return sum(differences) / len(differences)


class DistanceEstimator:
    """Strategy interface: produce the distance to use for a new plan."""

    def distance_for(self, result: PlanGenerationResult) -> float:
        raise NotImplementedError

    def observe_adaptation(
        self, previous_cost: float, new_cost: float
    ) -> None:
        """Feedback hook called after a plan replacement (used by meta-adaptive)."""


class FixedDistance(DistanceEstimator):
    """Always use the same, externally supplied distance."""

    def __init__(self, distance: float):
        if distance < 0:
            raise AdaptationError("distance must be >= 0")
        self._distance = float(distance)

    def distance_for(self, result: PlanGenerationResult) -> float:
        return self._distance

    def __repr__(self) -> str:
        return f"FixedDistance({self._distance:g})"


class AverageRelativeDifferenceDistance(DistanceEstimator):
    """Set ``d`` to the average relative difference observed at plan creation.

    Parameters
    ----------
    scale:
        Optional multiplier applied to the raw average (1.0 reproduces the
        paper's formula).
    cap:
        Upper bound on the returned distance, guarding against degenerate
        plans where one condition has an enormous relative slack.
    """

    def __init__(self, scale: float = 1.0, cap: float = 10.0):
        if scale < 0 or cap < 0:
            raise AdaptationError("scale and cap must be >= 0")
        self._scale = scale
        self._cap = cap

    def distance_for(self, result: PlanGenerationResult) -> float:
        davg = average_relative_difference(result.condition_sets, result.snapshot)
        return min(self._cap, self._scale * davg)

    def __repr__(self) -> str:
        return f"AverageRelativeDifferenceDistance(scale={self._scale:g})"


class MetaAdaptiveDistance(DistanceEstimator):
    """Tune ``d`` on-the-fly from the observed gain of each adaptation.

    Starts from an initial distance (possibly produced by another
    estimator).  After every plan replacement the realised relative cost
    improvement is compared against a target: replacements that gained less
    than ``target_gain`` increase the distance (we were too eager),
    replacements that gained much more decrease it (we may be reacting too
    late).  This is a simple concrete instance of the meta-adaptive
    direction sketched in Section 3.4.
    """

    def __init__(
        self,
        initial_distance: float = 0.1,
        target_gain: float = 0.1,
        adjustment: float = 1.5,
        minimum: float = 0.0,
        maximum: float = 2.0,
    ):
        if initial_distance < 0:
            raise AdaptationError("initial_distance must be >= 0")
        if adjustment <= 1.0:
            raise AdaptationError("adjustment factor must be > 1")
        self._distance = initial_distance
        self._target_gain = target_gain
        self._adjustment = adjustment
        self._minimum = minimum
        self._maximum = maximum

    @property
    def current_distance(self) -> float:
        return self._distance

    def distance_for(self, result: PlanGenerationResult) -> float:
        return self._distance

    def observe_adaptation(self, previous_cost: float, new_cost: float) -> None:
        if previous_cost <= 0:
            return
        gain = (previous_cost - new_cost) / previous_cost
        if gain < self._target_gain:
            self._distance = min(self._maximum, max(self._distance, 1e-3) * self._adjustment)
        elif gain > 2 * self._target_gain:
            self._distance = max(self._minimum, self._distance / self._adjustment)

    def __repr__(self) -> str:
        return (
            f"MetaAdaptiveDistance(d={self._distance:g}, target={self._target_gain:g})"
        )

"""Invariants and invariant sets (Sections 3.1–3.3, 3.5 of the paper).

An *invariant* is a deciding condition selected for runtime verification,
optionally relaxed by a minimal distance ``d``: the invariant is considered
violated when ``(1 + d) * lhs >= rhs``.

An :class:`InvariantSet` holds the invariants of the currently installed
plan in verification order (plan order for order-based plans, bottom-up for
tree-based plans).  The reoptimizing decision function of the
invariant-based method simply walks this list and reports the first
violation.

Invariant selection from each block's deciding-condition set is delegated
to a :class:`SelectionStrategy`; the default is the paper's
tightest-condition heuristic, and :class:`ViolationProbabilityStrategy`
implements the alternative discussed in Section 3.5 for when the expected
variance of each statistic is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import AdaptationError
from repro.optimizer.recorder import (
    DecidingCondition,
    DecidingConditionSet,
    PlanGenerationResult,
)
from repro.statistics import StatisticsSnapshot


@dataclass(frozen=True)
class Invariant:
    """A deciding condition selected for runtime verification."""

    condition: DecidingCondition
    block_label: str
    distance: float = 0.0

    def holds(self, snapshot: StatisticsSnapshot) -> bool:
        """Whether the invariant (with its minimal distance) still holds."""
        return self.condition.holds(snapshot, distance=self.distance)

    def is_violated(self, snapshot: StatisticsSnapshot) -> bool:
        return not self.holds(snapshot)

    def slack(self, snapshot: StatisticsSnapshot) -> float:
        return self.condition.slack(snapshot)

    def describe(self) -> str:
        prefix = f"[{self.block_label}] "
        if self.distance > 0:
            lhs = self.condition.lhs.describe()
            rhs = self.condition.rhs.describe()
            return f"{prefix}{lhs} < (1+{self.distance:g}) * {rhs}"
        return prefix + self.condition.describe()

    def __repr__(self) -> str:
        return f"Invariant({self.describe()})"


class SelectionStrategy:
    """Selects which deciding conditions of a block become invariants."""

    def select(
        self,
        condition_set: DecidingConditionSet,
        snapshot: StatisticsSnapshot,
        k: int,
    ) -> List[DecidingCondition]:
        raise NotImplementedError


class TightestConditionStrategy(SelectionStrategy):
    """The paper's default: pick the conditions with the smallest slack."""

    def select(
        self,
        condition_set: DecidingConditionSet,
        snapshot: StatisticsSnapshot,
        k: int,
    ) -> List[DecidingCondition]:
        return condition_set.tightest(snapshot, k)


class ViolationProbabilityStrategy(SelectionStrategy):
    """Pick the conditions most likely to be violated (Section 3.5).

    Parameters
    ----------
    probability:
        Callable mapping ``(condition, snapshot)`` to an estimated violation
        probability.  Conditions with the highest probability are selected.
        When variance information is unavailable the caller can supply any
        heuristic score; the default falls back to the reciprocal of the
        relative slack, which ranks like the tightest-condition strategy.
    """

    def __init__(
        self,
        probability: Optional[
            Callable[[DecidingCondition, StatisticsSnapshot], float]
        ] = None,
    ):
        self._probability = probability or self._default_probability

    @staticmethod
    def _default_probability(
        condition: DecidingCondition, snapshot: StatisticsSnapshot
    ) -> float:
        relative = condition.relative_difference(snapshot)
        return 1.0 / (1.0 + relative)

    def select(
        self,
        condition_set: DecidingConditionSet,
        snapshot: StatisticsSnapshot,
        k: int,
    ) -> List[DecidingCondition]:
        if condition_set.is_empty():
            return []
        ordered = sorted(
            condition_set.conditions,
            key=lambda c: -self._probability(c, snapshot),
        )
        if k <= 0 or k >= len(ordered):
            return list(ordered)
        return ordered[:k]


class RandomSelectionStrategy(SelectionStrategy):
    """Pick conditions pseudo-randomly (ablation baseline for Section 3.5)."""

    def __init__(self, seed: int = 0):
        self._seed = seed

    def select(
        self,
        condition_set: DecidingConditionSet,
        snapshot: StatisticsSnapshot,
        k: int,
    ) -> List[DecidingCondition]:
        if condition_set.is_empty():
            return []
        conditions = list(condition_set.conditions)
        # Deterministic pseudo-shuffle keyed by the block label so the
        # ablation is reproducible without global RNG state.
        conditions.sort(
            key=lambda c: hash((self._seed, condition_set.block_label, c.describe()))
        )
        if k <= 0 or k >= len(conditions):
            return conditions
        return conditions[:k]


class InvariantSet:
    """The ordered invariant list of the currently installed plan."""

    def __init__(self, invariants: Sequence[Invariant]):
        self._invariants = list(invariants)

    @property
    def invariants(self) -> Sequence[Invariant]:
        return tuple(self._invariants)

    def __len__(self) -> int:
        return len(self._invariants)

    def __iter__(self):
        return iter(self._invariants)

    def first_violated(self, snapshot: StatisticsSnapshot) -> Optional[Invariant]:
        """The first violated invariant in verification order, or ``None``.

        Invariants are checked in plan order because each one implicitly
        assumes the correctness of the preceding ones (Section 3.2).
        """
        for invariant in self._invariants:
            if invariant.is_violated(snapshot):
                return invariant
        return None

    def is_violated(self, snapshot: StatisticsSnapshot) -> bool:
        return self.first_violated(snapshot) is not None

    def violations(self, snapshot: StatisticsSnapshot) -> List[Invariant]:
        """All violated invariants (diagnostics; D only needs the first)."""
        return [inv for inv in self._invariants if inv.is_violated(snapshot)]

    def describe(self) -> str:
        return "\n".join(invariant.describe() for invariant in self._invariants)

    def __repr__(self) -> str:
        return f"InvariantSet({len(self._invariants)} invariants)"


def build_invariant_set(
    result: PlanGenerationResult,
    k: int = 1,
    distance: float = 0.0,
    strategy: Optional[SelectionStrategy] = None,
    per_block_distances: Optional[Dict[str, float]] = None,
) -> InvariantSet:
    """Build the invariant set for a freshly generated plan.

    Parameters
    ----------
    result:
        The instrumented planner output (plan + deciding-condition sets).
    k:
        Maximal number of conditions selected per block (the K-invariant
        method).  ``k <= 0`` selects every condition, giving the
        iff guarantee of Theorem 2.
    distance:
        Minimal relative distance ``d`` applied to every invariant
        (Section 3.4).
    strategy:
        Invariant selection strategy; defaults to the tightest-condition
        heuristic.
    per_block_distances:
        Optional per-block overrides of ``distance`` (fine-grained
        distances, mentioned as an extension in Section 3.4).
    """
    if distance < 0:
        raise AdaptationError("invariant distance must be >= 0")
    strategy = strategy or TightestConditionStrategy()
    snapshot = result.snapshot
    invariants: List[Invariant] = []
    for condition_set in result.condition_sets:
        block_distance = distance
        if per_block_distances and condition_set.block_label in per_block_distances:
            block_distance = per_block_distances[condition_set.block_label]
        for condition in strategy.select(condition_set, snapshot, k):
            invariants.append(
                Invariant(
                    condition=condition,
                    block_label=condition_set.block_label,
                    distance=block_distance,
                )
            )
    return InvariantSet(invariants)

"""The detection–adaptation loop controller (Algorithm 1 in the paper).

The :class:`AdaptationController` owns the adaptive side of an ACEP system:
it holds the current plan, periodically evaluates the reoptimizing decision
function ``D`` against fresh statistics, re-invokes the plan-generation
algorithm ``A`` when ``D`` says so, compares the new plan's cost with the
current one, and reports plan replacements to the runtime engine.

It also does the bookkeeping the experiments need: the number of times
``D`` and ``A`` ran, the number of actual plan replacements, and the time
spent inside ``D`` and ``A`` (the "computational overhead" panels of
Figures 6–9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.adaptive.policies import InvariantBasedPolicy, PolicyDecision, ReoptimizationPolicy
from repro.errors import AdaptationError
from repro.optimizer.base import PlanGenerator
from repro.optimizer.recorder import PlanGenerationResult
from repro.patterns import Pattern
from repro.plans.base import EvaluationPlan
from repro.statistics import StatisticsSnapshot


@dataclass
class AdaptationRecord:
    """One entry in the adaptation log: a plan replacement.

    ``trigger_distance`` and ``drift`` carry the quantitative context of a
    replacement — how far past the invariant boundary the statistics moved
    (:attr:`InvariantBasedPolicy.current_distance`) and the worst-drifting
    predicted-vs-observed selectivity pairs of the plan being retired (from
    the attached :class:`~repro.obs.introspect.DriftMonitor`).  Both are
    ``None`` when their source is not configured.
    """

    time: float
    reason: str
    previous_cost: float
    new_cost: float
    plan_description: str
    trigger_distance: Optional[float] = None
    drift: Optional[List[dict]] = None


@dataclass
class AdaptationStatistics:
    """Counters accumulated by the controller during a run."""

    decisions_evaluated: int = 0
    reoptimizations_requested: int = 0
    plans_generated: int = 0
    plans_replaced: int = 0
    time_in_decision: float = 0.0
    time_in_generation: float = 0.0
    replacements: List[AdaptationRecord] = field(default_factory=list)

    @property
    def adaptation_time(self) -> float:
        """Total time spent in D and A (the computational-overhead numerator)."""
        return self.time_in_decision + self.time_in_generation


class AdaptationController:
    """Drives plan selection and adaptation for one pattern.

    Parameters
    ----------
    pattern:
        The pattern being evaluated.
    planner:
        The plan-generation algorithm ``A``.
    policy:
        The reoptimizing decision function ``D``.
    initial_snapshot:
        Statistics used to create the initial plan (Algorithm 1's
        ``in_stat``).  May be ``None``, in which case the first monitoring
        period will trigger plan creation.
    """

    def __init__(
        self,
        pattern: Pattern,
        planner: PlanGenerator,
        policy: ReoptimizationPolicy,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        min_relative_improvement: float = 0.0,
    ):
        if min_relative_improvement < 0:
            raise AdaptationError("min_relative_improvement must be >= 0")
        self._pattern = pattern
        self._planner = planner
        self._policy = policy
        self._min_relative_improvement = float(min_relative_improvement)
        self._current_result: Optional[PlanGenerationResult] = None
        self.statistics = AdaptationStatistics()
        #: Optional replacement observer ``(AdaptationRecord) -> None``,
        #: called whenever a plan is actually replaced — the streaming
        #: decision log's ``replan`` hook.  Process-local: excluded from
        #: pickled state (controllers travel inside engine snapshots and
        #: to worker processes) and re-attached by the pipeline.
        self.decision_sink = None
        #: Optional :class:`~repro.obs.introspect.DriftMonitor` whose
        #: predicted-vs-observed drift table is attached to replacement
        #: records (set by :class:`~repro.engine.AdaptiveCEPEngine` when
        #: introspection is enabled).  Plain data — travels in snapshots.
        self.drift_monitor = None
        if initial_snapshot is not None:
            self._install_initial_plan(initial_snapshot)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["decision_sink"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Snapshots from builds that predate the sink lack the key.
        self.__dict__.setdefault("decision_sink", None)
        self.__dict__.setdefault("drift_monitor", None)

    def _notify_replacement(self, record: AdaptationRecord) -> None:
        sink = getattr(self, "decision_sink", None)
        if sink is not None:
            sink(record)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pattern(self) -> Pattern:
        return self._pattern

    @property
    def planner(self) -> PlanGenerator:
        return self._planner

    @property
    def policy(self) -> ReoptimizationPolicy:
        return self._policy

    @property
    def current_plan(self) -> EvaluationPlan:
        if self._current_result is None:
            raise AdaptationError("no plan installed yet; call update() first")
        return self._current_result.plan

    @property
    def current_result(self) -> Optional[PlanGenerationResult]:
        return self._current_result

    @property
    def has_plan(self) -> bool:
        return self._current_result is not None

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    def _install_initial_plan(self, snapshot: StatisticsSnapshot) -> None:
        result = self._timed_generate(snapshot)
        self._current_result = result
        self._policy.on_plan_installed(result, snapshot)

    def _timed_generate(self, snapshot: StatisticsSnapshot) -> PlanGenerationResult:
        started = time.perf_counter()
        result = self._planner.generate(self._pattern, snapshot)
        self.statistics.time_in_generation += time.perf_counter() - started
        self.statistics.plans_generated += 1
        return result

    def update(self, snapshot: StatisticsSnapshot) -> Optional[EvaluationPlan]:
        """One iteration of the detection–adaptation loop's decision step.

        Evaluates ``D`` on the given statistics and, when it returns true,
        invokes ``A``.  The new plan is installed only if it improves on the
        current plan's cost (Algorithm 1: "if new_plan is better than
        curr_plan").  Returns the newly installed plan, or ``None`` when the
        plan did not change.
        """
        if self._current_result is None:
            result = self._timed_generate(snapshot)
            self._current_result = result
            self._policy.on_plan_installed(result, snapshot)
            self.statistics.plans_replaced += 1
            record = AdaptationRecord(
                time=snapshot.timestamp,
                reason="initial plan",
                previous_cost=float("inf"),
                new_cost=result.plan.cost(snapshot),
                plan_description=result.plan.describe(),
            )
            self.statistics.replacements.append(record)
            self._notify_replacement(record)
            return result.plan

        started = time.perf_counter()
        decision: PolicyDecision = self._policy.should_reoptimize(snapshot)
        self.statistics.time_in_decision += time.perf_counter() - started
        self.statistics.decisions_evaluated += 1
        if not decision.reoptimize:
            return None

        self.statistics.reoptimizations_requested += 1
        new_result = self._timed_generate(snapshot)
        current_cost = self._current_result.plan.cost(snapshot)
        new_cost = new_result.plan.cost(snapshot)

        required_cost = current_cost * (1.0 - self._min_relative_improvement)
        if new_result.plan == self._current_result.plan or new_cost >= required_cost:
            # The freshly generated plan is not a (meaningful) improvement;
            # keep the current one.  The small improvement margin implements
            # Algorithm 1's "if new_plan is better than curr_plan" check
            # robustly against estimator noise, so near-identical plans do
            # not oscillate with every monitoring period.
            return None

        # Capture the replacement's motivation before installing the new
        # plan: the distance is the policy's view of the *old* invariants,
        # and the drift table must compare against the *old* plan's
        # predictions — after installation both describe the new plan.
        trigger_distance = getattr(self._policy, "current_distance", None)
        monitor = getattr(self, "drift_monitor", None)
        drift = monitor.top_drifts(snapshot) if monitor is not None else None

        if isinstance(self._policy, InvariantBasedPolicy):
            self._policy.observe_adaptation(current_cost, new_cost)
        self._current_result = new_result
        self._policy.on_plan_installed(new_result, snapshot)
        self.statistics.plans_replaced += 1
        record = AdaptationRecord(
            time=snapshot.timestamp,
            reason=decision.reason,
            previous_cost=current_cost,
            new_cost=new_cost,
            plan_description=new_result.plan.describe(),
            trigger_distance=trigger_distance,
            drift=drift,
        )
        self.statistics.replacements.append(record)
        self._notify_replacement(record)
        return new_result.plan

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def overhead_fraction(self, total_time: float) -> float:
        """Fraction of ``total_time`` spent inside D and A."""
        if total_time <= 0:
            return 0.0
        return min(1.0, self.statistics.adaptation_time / total_time)

    def describe(self) -> str:
        stats = self.statistics
        lines = [
            f"policy={self._policy.name}, planner={self._planner.name}",
            f"decisions={stats.decisions_evaluated}, requested={stats.reoptimizations_requested}, "
            f"replaced={stats.plans_replaced}",
            f"time: D={stats.time_in_decision:.4f}s, A={stats.time_in_generation:.4f}s",
        ]
        if self._current_result is not None:
            lines.append(f"current plan: {self._current_result.plan.describe()}")
        return "\n".join(lines)

"""Shared one-pass multi-pattern evaluation.

Historically this engine evaluated a :class:`CompositePattern` by feeding
every event to every sub-pattern's engine — N patterns meant reading the
stream N times.  It now serves a :class:`~repro.multi.PatternSet` (or a
plain ``list`` of patterns) in **one pass**:

* each event is routed through a per-event-type dispatch table to only
  the patterns that can consume it;
* one :class:`~repro.multi.SharedStatisticsHub` counts every arrival
  exactly once, and every pattern's collector reads the shared
  per-event-type estimators;
* plans that open with a structurally common prefix are routed by the
  :class:`~repro.multi.PrefixShareManager` into a
  :class:`~repro.multi.SharedPrefixGroup`: the prefix is materialised
  once and its completed bindings are fanned out to each pattern's
  :class:`~repro.multi.SuffixNFAEngine`;
* the adaptive controller still re-plans each pattern independently —
  every re-planned engine is routed through the share manager again, and
  plan-migration draining keeps per-pattern match sets byte-identical to
  N isolated pipelines.

Matches are tagged with their originating pattern's registry id
(``Match.pattern_id``), so the union output keeps provenance.

The legacy ``CompositePattern`` constructor still works behind a
:class:`DeprecationWarning`, and a bare :class:`Pattern` still raises the
historical :class:`~repro.errors.EngineError`.
"""

from __future__ import annotations

import pickle
import time
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.adaptive import ReoptimizationPolicy
from repro.engine.cep_engine import AdaptiveCEPEngine, RunResult
from repro.engine.match import Match
from repro.errors import EngineError
from repro.events import Event, EventStream
from repro.metrics import RunMetrics
from repro.multi.hub import SharedStatisticsCollector, SharedStatisticsHub
from repro.multi.registry import PatternSet
from repro.multi.sharing import (
    PrefixShareManager,
    SharedPrefixGroup,
    SuffixNFAEngine,
    share_prefix_statistics,
)
from repro.optimizer import PlanGenerator
from repro.patterns import CompositePattern, Pattern
from repro.statistics import StatisticsProvider, StatisticsSnapshot

PolicyFactory = Callable[[], ReoptimizationPolicy]


class MultiPatternEngine:
    """Shared one-pass evaluation of many patterns over one stream.

    Parameters
    ----------
    patterns:
        A :class:`~repro.multi.PatternSet`, a plain iterable of
        :class:`Pattern` objects, or (deprecated) a
        :class:`CompositePattern`.
    planner:
        Plan-generation algorithm shared by all patterns (planners are
        stateless, so sharing one instance is safe).
    policy_factory:
        Callable producing a fresh decision policy per pattern (policies
        are stateful: each pattern needs its own).
    statistics_provider / initial_snapshot / monitoring_interval / introspect /
    compile_mode:
        Forwarded to every per-pattern engine.
    statistics_window:
        Sliding window of the shared statistics hub (defaults to five of
        the longest pattern window, matching the per-pattern default).
    enable_sharing:
        Route plans through the shared-prefix manager (default).  When
        off, per-pattern engines are built standalone; event dispatch and
        the shared statistics hub still apply.
    """

    def __init__(
        self,
        patterns,
        planner: PlanGenerator,
        policy_factory: PolicyFactory,
        statistics_provider: Optional[StatisticsProvider] = None,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        monitoring_interval: float = 1.0,
        introspect: bool = False,
        compile_mode: str = "interpreted",
        statistics_window: Optional[float] = None,
        enable_sharing: bool = True,
    ):
        pattern_set = _coerce_patterns(patterns)
        if not len(pattern_set):
            raise EngineError("MultiPatternEngine requires at least one pattern")
        self.pattern = pattern_set if isinstance(patterns, PatternSet) else patterns
        if not hasattr(self.pattern, "subpatterns"):
            self.pattern = pattern_set
        self.pattern_set = pattern_set
        self.compile_mode = compile_mode
        self._sharing_enabled = bool(enable_sharing)

        window = pattern_set.window if pattern_set.window != float("inf") else 100.0
        self._hub = SharedStatisticsHub(window=statistics_window or 5.0 * window)
        self._manager = PrefixShareManager(self._hub, compile_mode=compile_mode)
        for subpattern in pattern_set:
            self._hub.register(subpattern)
            if self._sharing_enabled:
                self._manager.register(subpattern)

        self._adaptives: Dict[str, AdaptiveCEPEngine] = {}
        self._ids_by_name: Dict[str, str] = {}
        for pattern_id, subpattern in pattern_set.items():
            collector = SharedStatisticsCollector(self._hub)
            engine = AdaptiveCEPEngine(
                pattern=subpattern,
                planner=planner,
                policy=policy_factory(),
                statistics_provider=statistics_provider,
                initial_snapshot=_restrict_snapshot(initial_snapshot, subpattern),
                monitoring_interval=monitoring_interval,
                introspect=introspect,
                compile_mode=compile_mode,
                statistics_collector=collector,
                engine_factory=self._manager if self._sharing_enabled else None,
            )
            self._manager.attach(subpattern.name, engine)
            self._adaptives[pattern_id] = engine
            self._ids_by_name[subpattern.name] = pattern_id
        self._reset_routing()

    def _reset_routing(self) -> None:
        self._routes: Dict[str, List[Tuple[str, AdaptiveCEPEngine]]] = {}
        self._group_routes: Dict[str, List[SharedPrefixGroup]] = {}
        self._routing_version = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sub_engines(self) -> List[AdaptiveCEPEngine]:
        return list(self._adaptives.values())

    @property
    def share_manager(self) -> PrefixShareManager:
        return self._manager

    @property
    def statistics_hub(self) -> SharedStatisticsHub:
        return self._hub

    def engine_for(self, pattern_id: str) -> AdaptiveCEPEngine:
        """The per-pattern adaptive engine registered under ``pattern_id``."""
        try:
            return self._adaptives[pattern_id]
        except KeyError:
            raise EngineError(f"no engine for pattern id {pattern_id!r}") from None

    def reoptimization_count(self) -> int:
        return sum(engine.reoptimization_count() for engine in self._adaptives.values())

    def partial_match_count(self) -> int:
        total = sum(
            engine.partial_match_count() for engine in self._adaptives.values()
        )
        for group in self._manager.groups():
            total += group.engine.partial_match_count()
        return total

    @property
    def plan_history(self) -> List[str]:
        history: List[str] = []
        for engine in self._adaptives.values():
            history.extend(engine.plan_history)
        return history

    def prefix_hits_total(self) -> int:
        """Partial-match deliveries saved work across all shared prefixes."""
        return self._manager.prefix_hits_total()

    def introspection(self) -> dict:
        """Per-pattern introspection frames plus shared-evaluation totals."""
        frames = {
            pattern_id: engine.introspection()
            for pattern_id, engine in self._adaptives.items()
        }
        from repro.compile import kernels_reused_total

        return {
            "pattern": self.pattern.name,
            "reoptimizations": self.reoptimization_count(),
            "partial_matches": {
                "live": self.partial_match_count(),
                "high_water": max(
                    (frame["partial_matches"]["high_water"] for frame in frames.values()),
                    default=0,
                ),
            },
            "sharing": {
                "enabled": self._sharing_enabled,
                "groups": self._manager.sharing_report(),
                "prefix_hits": self._manager.prefix_hits_total(),
                "kernels_reused": kernels_reused_total(),
            },
            "patterns": frames,
        }

    # ------------------------------------------------------------------
    # State snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def multi_state_frames(self) -> Tuple[bytes, Dict[str, bytes]]:
        """Shared meta state plus one independently restorable frame per
        pattern — the layout :func:`repro.engine.state.snapshot_multi_state`
        frames into a single snapshot blob."""
        from repro.engine.state import snapshot_engine

        meta = {
            "pattern": self.pattern,
            "pattern_set": self.pattern_set,
            "manager": self._manager,
            "hub": self._hub,
            "compile_mode": self.compile_mode,
            "sharing": self._sharing_enabled,
            "ids": list(self._adaptives),
        }
        meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        frames = {
            pattern_id: snapshot_engine(engine)
            for pattern_id, engine in self._adaptives.items()
        }
        return meta_blob, frames

    def snapshot_state(self) -> bytes:
        """Serialize per-pattern state frames inside one snapshot; see
        :func:`repro.engine.state.snapshot_multi_state`."""
        from repro.engine.state import snapshot_multi_state

        meta_blob, frames = self.multi_state_frames()
        return snapshot_multi_state(meta_blob, frames)

    @classmethod
    def restore_state(cls, blob: bytes) -> "MultiPatternEngine":
        """Rebuild a multi-pattern engine from a :meth:`snapshot_state` blob
        (or a legacy whole-graph :func:`snapshot_engine` frame)."""
        from repro.engine.state import is_multi_snapshot, restore_multi_state

        if is_multi_snapshot(blob):
            meta_blob, frames = restore_multi_state(blob)
            meta = pickle.loads(meta_blob)
            engine = cls.__new__(cls)
            engine.pattern = meta["pattern"]
            engine.pattern_set = meta["pattern_set"]
            engine._manager = meta["manager"]
            engine._hub = meta["hub"]
            engine.compile_mode = meta["compile_mode"]
            engine._sharing_enabled = meta["sharing"]
            engine._adaptives = {}
            engine._ids_by_name = {
                pattern.name: pattern_id
                for pattern_id, pattern in engine.pattern_set.items()
            }
            from repro.engine.state import restore_engine

            for pattern_id in meta["ids"]:
                engine._adaptives[pattern_id] = restore_engine(frames[pattern_id])
            engine._reset_routing()
            engine._rewire_sharing()
            return engine

        from repro.engine.state import restore_engine

        restored = restore_engine(blob)
        if not isinstance(restored, cls):
            raise EngineError(
                f"snapshot holds a {type(restored).__name__}, not a {cls.__name__}"
            )
        return restored

    def __setstate__(self, state):
        # Whole-graph pickling (worker replicas, delta skeletons) drops the
        # group membership lists and each sub-engine's factory reference;
        # re-establish the sharing topology from the restored graph.
        self.__dict__.update(state)
        self._reset_routing()
        self._rewire_sharing()

    def _rewire_sharing(self) -> None:
        """Re-attach suffix engines to their groups and collectors to the
        canonical hub after a restore.  Idempotent."""
        manager = self._manager
        hub = self._hub
        for group in manager.groups():
            group.collector.attach_hub(hub)
        for pattern_id, adaptive in self._adaptives.items():
            pattern = adaptive.pattern
            adaptive._engine_factory = manager if self._sharing_enabled else None
            collector = adaptive.collector
            if isinstance(collector, SharedStatisticsCollector):
                collector.attach_hub(hub)
            manager.attach(pattern.name, adaptive)
            for engine in adaptive.evaluation_engines():
                if isinstance(engine, SuffixNFAEngine):
                    group = manager.group_by_signature(engine.group_signature)
                    if group is not None:
                        group.adopt_member(engine, pattern.name)
                        share_prefix_statistics(collector, group)
        manager.version += 1

    def _delta_keyed_state(self):
        """Change-tracked collections of every sub-engine plus the shared
        prefix groups (delta snapshots)."""
        slots = []
        for pattern_id, engine in self._adaptives.items():
            slots.extend(
                (f"sub[{pattern_id}].{name}", holder, attr)
                for name, holder, attr in engine._delta_keyed_state()
            )
        for index, group in enumerate(self._manager.groups()):
            slots.extend(
                (f"group{index}.{name}", holder, attr)
                for name, holder, attr in group.engine._delta_keyed_state()
            )
            slots.extend(
                (f"group{index}.stats.{name}", holder, attr)
                for name, holder, attr in group.collector._delta_keyed_state()
            )
        return slots

    def _delta_frozen_state(self):
        """Immutable roots across the registry and its sub-engines."""
        roots = [self.pattern]
        for engine in self._adaptives.values():
            roots.extend(engine._delta_frozen_state())
        return roots

    def snapshot_delta(self, since_epoch=None, epoch=None) -> bytes:
        """Framed incremental snapshot since ``since_epoch``; see
        :func:`repro.streaming.delta.engine_snapshot_delta`."""
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self, since_epoch, epoch)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _rebuild_routing(self) -> None:
        """Per-event-type dispatch: each type maps to the prefix groups and
        the per-pattern engines that consume it.  A pattern is *skipped*
        for a type when every one of its live engines receives that type
        through a shared prefix group instead."""
        routes: Dict[str, List[Tuple[str, AdaptiveCEPEngine]]] = {}
        for pattern_id, adaptive in self._adaptives.items():
            live = adaptive.evaluation_engines()
            for event_type in adaptive.pattern.event_types:
                name = event_type.name
                if live and all(
                    isinstance(engine, SuffixNFAEngine)
                    and name in engine.prefix_types
                    for engine in live
                ):
                    continue
                entries = routes.setdefault(name, [])
                if not any(entry[0] == pattern_id for entry in entries):
                    entries.append((pattern_id, adaptive))
        group_routes: Dict[str, List[SharedPrefixGroup]] = {}
        for group in self._manager.groups():
            group.prune_members()
            if group.member_count == 0:
                # A memberless group receives no events at all.  Should a
                # member join it later, its join gate only admits prefix
                # completions made of strictly newer events — which the
                # re-entry full-process path derives afresh — so skipping
                # the group while it is empty loses nothing.
                continue
            for name in sorted(group.prefix_types):
                group_routes.setdefault(name, []).append(group)
        self._routes = routes
        self._group_routes = group_routes
        self._routing_version = self._manager.version

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        if self._routing_version != self._manager.version:
            self._rebuild_routing()
        self._hub.observe(event)
        type_name = event.type_name
        matches: List[Match] = []
        processed_groups = self._group_routes.get(type_name, ())
        for group in processed_groups:
            matches.extend(group.process(event))
        for _pattern_id, adaptive in self._routes.get(type_name, ()):
            matches.extend(adaptive.process(event))
        if self._routing_version != self._manager.version:
            # A re-plan during this event changed the sharing topology
            # (new engine, new group membership).  Rebuild the dispatch
            # and hand this event's prefix completions to members that
            # joined mid-event — their join gate admits exactly the
            # completions their draining predecessor must suppress.
            self._rebuild_routing()
            for group in self._group_routes.get(type_name, ()):
                if any(g is group for g in processed_groups):
                    matches.extend(group.deliver_pending(event))
                else:
                    matches.extend(group.process(event))
        return self._tag(matches)

    def process_batch(self, events: List[Event]) -> List[Match]:
        """One-pass dispatch of a batch: each event is routed exactly once
        (the concatenation order of the union output follows event order,
        matching event-at-a-time processing)."""
        matches: List[Match] = []
        for event in events:
            matches.extend(self.process(event))
        return matches

    def _tag(self, matches: List[Match]) -> List[Match]:
        for match in matches:
            pattern_id = self._ids_by_name.get(match.pattern_name)
            if pattern_id is not None:
                match.pattern_id = pattern_id
        return matches

    def run(self, stream: "EventStream | Iterable[Event]") -> RunResult:
        """Process a whole stream in one pass and report run metrics."""
        matches: List[Match] = []
        events_processed = 0
        started = time.perf_counter()
        for event in stream:
            matches.extend(self.process(event))
            events_processed += 1
        duration = time.perf_counter() - started

        metrics = RunMetrics(
            events_processed=events_processed,
            matches_emitted=len(matches),
            duration_seconds=duration,
        )
        plan_history: List[str] = []
        for engine in self._adaptives.values():
            adaptation = engine.controller.statistics
            counters = engine.migration_manager.total_counters()
            metrics.reoptimizations += engine.reoptimization_count()
            metrics.decisions_evaluated += adaptation.decisions_evaluated
            metrics.time_in_decision += adaptation.time_in_decision
            metrics.time_in_generation += adaptation.time_in_generation
            metrics.partial_matches_created += counters.partial_matches_created
            metrics.extension_attempts += counters.extension_attempts
            plan_history.extend(engine.plan_history)
        for group in self._manager.groups():
            counters = group.engine.counters
            metrics.partial_matches_created += counters.partial_matches_created
            metrics.extension_attempts += counters.extension_attempts
        return RunResult(matches=matches, metrics=metrics, plan_history=plan_history)


def _coerce_patterns(patterns) -> PatternSet:
    """Validate and normalise the constructor's ``patterns`` argument."""
    if isinstance(patterns, PatternSet):
        return patterns
    if isinstance(patterns, CompositePattern):
        warnings.warn(
            "passing a CompositePattern to MultiPatternEngine is deprecated; "
            "pass a PatternSet (stable pattern ids, add/remove) or a plain "
            "list of Patterns instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return PatternSet(patterns.subpatterns(), name=patterns.name)
    if isinstance(patterns, Pattern) or not _is_pattern_iterable(patterns):
        raise EngineError("MultiPatternEngine requires a CompositePattern")
    return PatternSet(list(patterns))


def _is_pattern_iterable(patterns) -> bool:
    try:
        return all(isinstance(p, Pattern) for p in patterns)
    except TypeError:
        return False


def _restrict_snapshot(
    snapshot: Optional[StatisticsSnapshot], pattern: Pattern
) -> Optional[StatisticsSnapshot]:
    """Restrict an initial snapshot to the types a sub-pattern actually uses."""
    if snapshot is None:
        return None
    wanted = {item.event_type.name for item in pattern.items}
    if all(snapshot.has_rate(name) for name in wanted):
        return snapshot.restrict(wanted)
    return None

"""Multi-pattern engine for composite (disjunction) patterns.

Following the paper, a composite pattern — a disjunction of independent
sub-sequences — is evaluated by running each sub-pattern independently with
its own plan, statistics and adaptation state; the union of the
sub-patterns' matches is the composite pattern's output.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional

from repro.adaptive import ReoptimizationPolicy
from repro.engine.cep_engine import AdaptiveCEPEngine, RunResult
from repro.engine.match import Match
from repro.errors import EngineError
from repro.events import Event, EventStream
from repro.metrics import RunMetrics
from repro.optimizer import PlanGenerator
from repro.patterns import CompositePattern, Pattern
from repro.statistics import StatisticsProvider, StatisticsSnapshot

PolicyFactory = Callable[[], ReoptimizationPolicy]


class MultiPatternEngine:
    """Evaluates a :class:`CompositePattern` as independent sub-engines.

    Parameters
    ----------
    pattern:
        The composite pattern (disjunction of sub-patterns).
    planner:
        Plan-generation algorithm shared by all sub-patterns (planners are
        stateless, so sharing one instance is safe).
    policy_factory:
        Callable producing a fresh decision policy per sub-pattern
        (policies are stateful: each sub-pattern needs its own).
    statistics_provider / initial_snapshot / monitoring_interval / introspect /
    compile_mode:
        Forwarded to every sub-engine.
    """

    def __init__(
        self,
        pattern: CompositePattern,
        planner: PlanGenerator,
        policy_factory: PolicyFactory,
        statistics_provider: Optional[StatisticsProvider] = None,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        monitoring_interval: float = 1.0,
        introspect: bool = False,
        compile_mode: str = "interpreted",
    ):
        if not isinstance(pattern, CompositePattern):
            raise EngineError("MultiPatternEngine requires a CompositePattern")
        self.pattern = pattern
        self.compile_mode = compile_mode
        self._engines: List[AdaptiveCEPEngine] = []
        for subpattern in pattern.subpatterns():
            self._engines.append(
                AdaptiveCEPEngine(
                    pattern=subpattern,
                    planner=planner,
                    policy=policy_factory(),
                    statistics_provider=statistics_provider,
                    initial_snapshot=_restrict_snapshot(initial_snapshot, subpattern),
                    monitoring_interval=monitoring_interval,
                    introspect=introspect,
                    compile_mode=compile_mode,
                )
            )

    @property
    def sub_engines(self) -> List[AdaptiveCEPEngine]:
        return list(self._engines)

    def reoptimization_count(self) -> int:
        return sum(engine.reoptimization_count() for engine in self._engines)

    def partial_match_count(self) -> int:
        return sum(engine.partial_match_count() for engine in self._engines)

    def introspection(self) -> dict:
        """Per-sub-pattern introspection frames plus composite totals."""
        frames = {
            engine.pattern.name: engine.introspection() for engine in self._engines
        }
        return {
            "pattern": self.pattern.name,
            "reoptimizations": self.reoptimization_count(),
            "partial_matches": {
                "live": sum(
                    frame["partial_matches"]["live"] for frame in frames.values()
                ),
                "high_water": max(
                    (frame["partial_matches"]["high_water"] for frame in frames.values()),
                    default=0,
                ),
            },
            "patterns": frames,
        }

    # ------------------------------------------------------------------
    # State snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> bytes:
        """Serialize every sub-engine's state; see
        :func:`repro.engine.state.snapshot_engine`."""
        from repro.engine.state import snapshot_engine

        return snapshot_engine(self)

    @classmethod
    def restore_state(cls, blob: bytes) -> "MultiPatternEngine":
        """Rebuild a multi-pattern engine from a :meth:`snapshot_state` blob."""
        from repro.engine.state import restore_engine

        engine = restore_engine(blob)
        if not isinstance(engine, cls):
            raise EngineError(
                f"snapshot holds a {type(engine).__name__}, not a {cls.__name__}"
            )
        return engine

    def _delta_keyed_state(self):
        """Change-tracked collections of every sub-engine (delta snapshots)."""
        slots = []
        for index, engine in enumerate(self._engines):
            slots.extend(
                (f"sub{index}.{name}", holder, attr)
                for name, holder, attr in engine._delta_keyed_state()
            )
        return slots

    def _delta_frozen_state(self):
        """Immutable roots across the composite and its sub-engines."""
        roots = [self.pattern]
        for engine in self._engines:
            roots.extend(engine._delta_frozen_state())
        return roots

    def snapshot_delta(self, since_epoch=None, epoch=None) -> bytes:
        """Framed incremental snapshot since ``since_epoch``; see
        :func:`repro.streaming.delta.engine_snapshot_delta`."""
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self, since_epoch, epoch)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        matches: List[Match] = []
        for engine in self._engines:
            matches.extend(engine.process(event))
        return matches

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Feed one batch to every sub-engine (sub-patterns are independent,
        so per-batch instead of per-event interleaving changes only the
        concatenation order of the union, not its contents)."""
        matches: List[Match] = []
        for engine in self._engines:
            matches.extend(engine.process_batch(events))
        return matches

    def run(self, stream: "EventStream | Iterable[Event]") -> RunResult:
        """Process a whole stream through every sub-engine."""
        matches: List[Match] = []
        events_processed = 0
        started = time.perf_counter()
        for event in stream:
            matches.extend(self.process(event))
            events_processed += 1
        duration = time.perf_counter() - started

        metrics = RunMetrics(
            events_processed=events_processed,
            matches_emitted=len(matches),
            duration_seconds=duration,
        )
        plan_history: List[str] = []
        for engine in self._engines:
            adaptation = engine.controller.statistics
            counters = engine.migration_manager.total_counters()
            metrics.reoptimizations += engine.reoptimization_count()
            metrics.decisions_evaluated += adaptation.decisions_evaluated
            metrics.time_in_decision += adaptation.time_in_decision
            metrics.time_in_generation += adaptation.time_in_generation
            metrics.partial_matches_created += counters.partial_matches_created
            metrics.extension_attempts += counters.extension_attempts
            plan_history.extend(engine.plan_history)
        return RunResult(matches=matches, metrics=metrics, plan_history=plan_history)


def _restrict_snapshot(
    snapshot: Optional[StatisticsSnapshot], pattern: Pattern
) -> Optional[StatisticsSnapshot]:
    """Restrict an initial snapshot to the types a sub-pattern actually uses."""
    if snapshot is None:
        return None
    wanted = {item.event_type.name for item in pattern.items}
    if all(snapshot.has_rate(name) for name in wanted):
        return snapshot.restrict(wanted)
    return None

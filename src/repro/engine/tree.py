"""Tree (ZStream-style) engine for tree-based plans.

Events are buffered at the leaves of the plan tree; every internal node
stores the sub-matches covering its leaves.  When a new event arrives it is
turned into a leaf sub-match and propagated upwards: at each internal node
the new sub-match is joined against the sub-matches stored at the sibling
subtree, and the joins that satisfy the temporal, window and predicate
constraints are stored and propagated further.  Sub-matches reaching the
root are complete and are emitted (after negation filtering and Kleene
expansion, shared with the NFA engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compile import EventBatchColumns
from repro.engine.base import EvaluationEngine
from repro.engine.match import Match, PartialMatch
from repro.engine.semantics import (
    evaluate_join_conditions,
    groups_order_respected,
    local_conditions_hold,
)
from repro.errors import EngineError
from repro.events import Event
from repro.plans import TreeBasedPlan, TreeInternalNode, TreeLeaf, TreePlanNode
from repro.statistics import StatisticsCollector


class _NodeStore:
    """Runtime state attached to one plan-tree node."""

    __slots__ = ("node", "parent", "sibling", "matches")

    def __init__(
        self,
        node: TreePlanNode,
        parent: Optional[TreeInternalNode],
        sibling: Optional[TreePlanNode],
    ):
        self.node = node
        self.parent = parent
        self.sibling = sibling
        self.matches: List[PartialMatch] = []


class TreeEvaluationEngine(EvaluationEngine):
    """Executes a :class:`TreeBasedPlan` over an event stream."""

    def __init__(
        self,
        plan: TreeBasedPlan,
        collector: Optional[StatisticsCollector] = None,
        expiry_interval_fraction: float = 0.25,
        profiler=None,
        compile_mode: str = "interpreted",
    ):
        if not isinstance(plan, TreeBasedPlan):
            raise EngineError("TreeEvaluationEngine requires a TreeBasedPlan")
        super().__init__(plan.pattern, collector, profiler, compile_mode)
        self.plan = plan
        self._stores: Dict[int, _NodeStore] = {}
        self._leaf_by_type: Dict[str, List[TreeLeaf]] = {}
        self._build_stores(plan.root, parent=None, sibling=None)
        for leaf in plan.leaves():
            self._leaf_by_type.setdefault(leaf.type_name, []).append(leaf)
        window = plan.pattern.window
        self._expiry_interval = (
            window * expiry_interval_fraction if window != float("inf") else float("inf")
        )
        self._last_expiry = float("-inf")
        self._compile_plan()

    def _build_stores(
        self,
        node: TreePlanNode,
        parent: Optional[TreeInternalNode],
        sibling: Optional[TreePlanNode],
    ) -> None:
        self._stores[id(node)] = _NodeStore(node, parent, sibling)
        if isinstance(node, TreeInternalNode):
            self._build_stores(node.left, parent=node, sibling=node.right)
            self._build_stores(node.right, parent=node, sibling=node.left)

    # ------------------------------------------------------------------
    # EvaluationEngine interface
    # ------------------------------------------------------------------
    def partial_match_count(self) -> int:
        return sum(len(store.matches) for store in self._stores.values())

    def state_occupancy(self) -> Dict[str, int]:
        return {
            ",".join(variables): count
            for variables, count in self.stored_match_counts().items()
            if count
        }

    def expire(self, now: float) -> None:
        window = self.pattern.window
        if window == float("inf"):
            return
        cutoff = now - window
        for store in self._stores.values():
            store.matches = [
                pm
                for pm in store.matches
                if pm.min_timestamp is None or pm.min_timestamp >= cutoff
            ]
        self._expire_special_buffers(now)
        self._last_expiry = now

    def process(self, event: Event) -> List[Match]:
        return self._process_event(event, None, 0)

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Batch entry point: columnar leaf-admission sweep in compiled modes."""
        if self._compiled is None or not events:
            return super().process_batch(events)
        columns = EventBatchColumns(events)
        verdicts = self._compiled.local_verdicts(columns, self.collector)
        matches: List[Match] = []
        for row, event in enumerate(columns.events):
            matches.extend(self._process_event(event, verdicts, row))
        return matches

    def _process_event(self, event: Event, verdicts, row: int) -> List[Match]:
        now = event.timestamp
        self.counters.events_processed += 1
        if now - self._last_expiry >= self._expiry_interval:
            self.expire(now)
        self._buffer_special_items(event)

        compiled = self._compiled
        matches: List[Match] = []
        for leaf in self._leaf_by_type.get(event.type_name, ()):
            if verdicts is not None:
                held = verdicts[leaf.variable][row]
            elif compiled is not None:
                held = compiled.evaluate_local(leaf.variable, event, self.collector)
            else:
                held = local_conditions_hold(
                    self.pattern, leaf.variable, event, self.collector,
                    conditions=self._conditions,
                )
            if self.profiler is not None:
                self.profiler.record_edge(f"leaf[{leaf.variable}]", held)
            if not held:
                continue
            leaf_match = PartialMatch({leaf.variable: event})
            self.counters.partial_matches_created += 1
            matches.extend(self._store_and_propagate(leaf, leaf_match, now))
        if self.profiler is not None:
            self.profiler.observe_population(self.partial_match_count())
        return matches

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _store_and_propagate(
        self, node: TreePlanNode, partial: PartialMatch, now: float
    ) -> List[Match]:
        """Store a new sub-match at ``node`` and join it up the tree."""
        store = self._stores[id(node)]
        emitted: List[Match] = []

        if store.parent is None:
            # The node is the root: the sub-match covers all positive items.
            match = self._finalize(partial, now)
            if match is not None:
                emitted.append(match)
            return emitted

        store.matches.append(partial)
        sibling_store = self._stores[id(store.sibling)]
        parent_node = store.parent
        profiler = self.profiler
        node_id = id(node)
        for sibling_match in sibling_store.matches:
            joined = self._try_join(partial, sibling_match, now, node_id)
            if profiler is not None:
                profiler.record_edge(
                    "join[" + ",".join(parent_node.variables()) + "]",
                    joined is not None,
                )
            if joined is not None:
                emitted.extend(self._store_and_propagate(parent_node, joined, now))
        return emitted

    def _try_join(
        self, left: PartialMatch, right: PartialMatch, now: float, node_id: int
    ) -> Optional[PartialMatch]:
        """Join two sibling sub-matches if all constraints hold.

        ``left`` is the sub-match that just arrived at the node identified
        by ``node_id``; in compiled mode that id selects the pre-lowered
        join kernels oriented with ``left``'s variables on the left side.
        """
        self.counters.extension_attempts += 1
        span_min = min(
            value
            for value in (left.min_timestamp, right.min_timestamp)
            if value is not None
        )
        span_max = max(
            value
            for value in (left.max_timestamp, right.max_timestamp)
            if value is not None
        )
        if self.pattern.window != float("inf") and span_max - span_min > self.pattern.window:
            return None
        if not groups_order_respected(self.pattern, left.bindings, right.bindings):
            return None
        compiled = self._compiled
        if compiled is not None:
            if not compiled.evaluate_join(
                node_id, left.bindings, right.bindings, self.collector, now
            ):
                return None
        elif not evaluate_join_conditions(
            self.pattern, left.bindings, right.bindings, self.collector, now,
            conditions=self._conditions,
        ):
            return None
        self.counters.partial_matches_created += 1
        return left.merged(right)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def stored_match_counts(self) -> Dict[Tuple[str, ...], int]:
        """Number of stored sub-matches per tree node (keyed by its variables)."""
        return {
            store.node.variables(): len(store.matches)
            for store in self._stores.values()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TreeEvaluationEngine(plan={self.plan.describe()}, "
            f"partial_matches={self.partial_match_count()})"
        )

"""Shared matching semantics used by both runtime engines.

Both the lazy NFA and the tree engine need the same answers to three
questions when they consider adding an event (or joining two sub-matches):

1. Is the temporal ordering constraint of a SEQ pattern respected?
2. Does the combined match still fit inside the time window?
3. Do the pattern conditions that have just become fully bound hold?

The helpers in this module answer these questions over plain binding
mappings, and optionally report every pairwise condition evaluation to a
:class:`~repro.statistics.StatisticsCollector` so that selectivity
estimates track what the engine actually observes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.events import Event
from repro.patterns import Pattern
from repro.statistics import StatisticsCollector


def sequence_order_respected(
    pattern: Pattern,
    bindings: Mapping[str, object],
    variable: str,
    event: Event,
) -> bool:
    """Check the SEQ temporal constraint for adding ``event`` as ``variable``.

    Every already-bound positive variable that precedes ``variable`` in the
    pattern's declared order must hold an earlier event, and every bound
    variable that follows it must hold a later event.  Conjunction patterns
    impose no ordering and always pass.
    """
    if not pattern.is_sequence():
        return True
    position = pattern.positive_index(variable)
    for other in pattern.positive_items:
        if other.variable == variable or other.variable not in bindings:
            continue
        bound = bindings[other.variable]
        bound_events = bound if isinstance(bound, list) else [bound]
        other_position = pattern.positive_index(other.variable)
        for bound_event in bound_events:
            if other_position < position and not bound_event.timestamp < event.timestamp:
                return False
            if other_position > position and not event.timestamp < bound_event.timestamp:
                return False
    return True


def groups_order_respected(
    pattern: Pattern,
    left_bindings: Mapping[str, object],
    right_bindings: Mapping[str, object],
) -> bool:
    """Check the SEQ constraint between two disjoint sub-matches (tree joins)."""
    if not pattern.is_sequence():
        return True
    for left_variable, left_value in left_bindings.items():
        left_events = left_value if isinstance(left_value, list) else [left_value]
        left_position = pattern.positive_index(left_variable)
        for right_variable, right_value in right_bindings.items():
            right_events = right_value if isinstance(right_value, list) else [right_value]
            right_position = pattern.positive_index(right_variable)
            for left_event in left_events:
                for right_event in right_events:
                    if left_position < right_position:
                        if not left_event.timestamp < right_event.timestamp:
                            return False
                    elif left_position > right_position:
                        if not right_event.timestamp < left_event.timestamp:
                            return False
    return True


def window_respected(
    bindings: Mapping[str, object], event: Event, window: float
) -> bool:
    """Whether adding ``event`` keeps the match within the time window."""
    if window == float("inf"):
        return True
    timestamps = [event.timestamp]
    for value in bindings.values():
        if isinstance(value, list):
            timestamps.extend(e.timestamp for e in value)
        else:
            timestamps.append(value.timestamp)
    return max(timestamps) - min(timestamps) <= window


def evaluate_new_conditions(
    pattern: Pattern,
    bindings: Mapping[str, object],
    variable: str,
    event: Event,
    collector: Optional[StatisticsCollector] = None,
    now: Optional[float] = None,
    conditions=None,
) -> bool:
    """Evaluate the conditions that become fully bound by adding ``event``.

    Per-pair outcomes are reported to the statistics collector so that the
    selectivity estimates reflect the engine's real predicate hit rates.
    Returns ``True`` iff every newly applicable condition holds.

    ``conditions`` substitutes an alternative :class:`ConditionSet` for
    ``pattern.conditions`` — engines pass their (possibly instrumented)
    working set here.
    """
    if conditions is None:
        conditions = pattern.conditions
    trial: Dict[str, object] = dict(bindings)
    trial[variable] = event
    timestamp = event.timestamp if now is None else now
    satisfied = True
    for condition in conditions.newly_applicable(bindings.keys(), variable):
        outcome = condition.evaluate(trial)
        if collector is not None:
            _report_condition(collector, condition.variables, timestamp, outcome)
        if not outcome:
            satisfied = False
            # Keep evaluating the remaining conditions so their selectivity
            # estimators still receive observations; correctness only needs
            # the conjunction's overall outcome.
    return satisfied


def evaluate_join_conditions(
    pattern: Pattern,
    left_bindings: Mapping[str, object],
    right_bindings: Mapping[str, object],
    collector: Optional[StatisticsCollector] = None,
    now: float = 0.0,
    conditions=None,
) -> bool:
    """Evaluate the conditions coupling two disjoint sub-matches (tree joins)."""
    if conditions is None:
        conditions = pattern.conditions
    combined: Dict[str, object] = dict(left_bindings)
    combined.update(right_bindings)
    satisfied = True
    for condition in conditions.conditions_between(
        left_bindings.keys(), right_bindings.keys()
    ):
        outcome = condition.evaluate(combined)
        if collector is not None:
            _report_condition(collector, condition.variables, now, outcome)
        if not outcome:
            satisfied = False
    return satisfied


def local_conditions_hold(
    pattern: Pattern,
    variable: str,
    event: Event,
    collector: Optional[StatisticsCollector] = None,
    conditions=None,
) -> bool:
    """Evaluate the single-variable conditions of ``variable`` on ``event``."""
    if conditions is None:
        conditions = pattern.conditions
    satisfied = True
    for condition in conditions.single_variable_conditions(variable):
        outcome = condition.evaluate({variable: event})
        if collector is not None:
            collector.observe_condition(variable, variable, event.timestamp, outcome)
        if not outcome:
            satisfied = False
    return satisfied


def _report_condition(
    collector: StatisticsCollector,
    variables: Iterable[str],
    timestamp: float,
    outcome: bool,
) -> None:
    names = sorted(variables)
    if len(names) == 1:
        collector.observe_condition(names[0], names[0], timestamp, outcome)
        return
    for index, a in enumerate(names):
        for b in names[index + 1 :]:
            collector.observe_condition(a, b, timestamp, outcome)

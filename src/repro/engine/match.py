"""Partial and complete matches.

A *partial match* is a consistent binding of a subset of a pattern's
positive variables to concrete events.  A *match* is a completed binding of
all positive variables (after negation filtering and Kleene expansion).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.events import Event

BindingValue = Union[Event, List[Event]]


class PartialMatch:
    """An immutable binding of pattern variables to events.

    Partial matches are extended by creating new objects (``extended``), so
    an engine can keep the original open for other extensions without
    defensive copying.
    """

    __slots__ = ("_bindings", "_min_timestamp", "_max_timestamp")

    def __init__(self, bindings: Optional[Mapping[str, BindingValue]] = None):
        self._bindings: Dict[str, BindingValue] = dict(bindings or {})
        timestamps = [e.timestamp for e in self.events()]
        self._min_timestamp = min(timestamps) if timestamps else None
        self._max_timestamp = max(timestamps) if timestamps else None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def bindings(self) -> Mapping[str, BindingValue]:
        return self._bindings

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._bindings)

    @property
    def size(self) -> int:
        """Number of bound variables."""
        return len(self._bindings)

    @property
    def min_timestamp(self) -> Optional[float]:
        return self._min_timestamp

    @property
    def max_timestamp(self) -> Optional[float]:
        return self._max_timestamp

    def events(self) -> Iterator[Event]:
        """All bound events (Kleene bindings are flattened)."""
        for value in self._bindings.values():
            if isinstance(value, list):
                yield from value
            else:
                yield value

    def event_ids(self) -> frozenset:
        """Identity key over the bound events (used for deduplication)."""
        return frozenset(
            (event.type_name, event.timestamp, event.sequence_number)
            for event in self.events()
        )

    def get(self, variable: str) -> Optional[BindingValue]:
        return self._bindings.get(variable)

    def __contains__(self, variable: str) -> bool:
        return variable in self._bindings

    def contains_event(self, event: Event) -> bool:
        """Whether the exact event is already bound somewhere in the match."""
        for bound in self.events():
            if bound is event:
                return True
        return False

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def extended(self, variable: str, value: BindingValue) -> "PartialMatch":
        """Return a new partial match with one more variable bound."""
        bindings = dict(self._bindings)
        bindings[variable] = value
        return PartialMatch(bindings)

    def merged(self, other: "PartialMatch") -> "PartialMatch":
        """Return a new partial match combining two disjoint bindings."""
        bindings = dict(self._bindings)
        bindings.update(other._bindings)
        return PartialMatch(bindings)

    def span(self) -> float:
        """Temporal span of the bound events (0 for empty/singleton matches)."""
        if self._min_timestamp is None or self._max_timestamp is None:
            return 0.0
        return self._max_timestamp - self._min_timestamp

    def within_window(self, window: float) -> bool:
        return self.span() <= window

    def __repr__(self) -> str:
        parts = []
        for variable, value in self._bindings.items():
            if isinstance(value, list):
                parts.append(f"{variable}=[{len(value)} events]")
            else:
                parts.append(f"{variable}@{value.timestamp:g}")
        return f"PartialMatch({', '.join(parts)})"


class Match:
    """A completed pattern match reported to the user.

    Parameters
    ----------
    pattern_name:
        Name of the matched pattern.
    bindings:
        Final variable bindings (Kleene variables bind to lists of events).
    detection_time:
        Stream time at which the match was emitted.
    pattern_id:
        Stable id of the originating pattern (defaults to the pattern
        name).  Multi-pattern serving re-tags matches with the
        :class:`~repro.multi.PatternSet` registry id so sinks and decision
        logs keep provenance across the union output.
    """

    __slots__ = ("pattern_name", "bindings", "detection_time", "pattern_id")

    def __init__(
        self,
        pattern_name: str,
        bindings: Mapping[str, BindingValue],
        detection_time: float,
        pattern_id: Optional[str] = None,
    ):
        self.pattern_name = pattern_name
        self.bindings = dict(bindings)
        self.detection_time = float(detection_time)
        self.pattern_id = pattern_id if pattern_id is not None else pattern_name

    def events(self) -> List[Event]:
        events: List[Event] = []
        for value in self.bindings.values():
            if isinstance(value, list):
                events.extend(value)
            else:
                events.append(value)
        return events

    def event_ids(self) -> frozenset:
        return frozenset(
            (event.type_name, event.timestamp, event.sequence_number)
            for event in self.events()
        )

    def __getitem__(self, variable: str) -> BindingValue:
        return self.bindings[variable]

    def __repr__(self) -> str:
        variables = ", ".join(sorted(self.bindings))
        return f"Match({self.pattern_name}: {variables} @ {self.detection_time:g})"


def primary_events(bindings: Mapping[str, BindingValue]) -> Sequence[Event]:
    """The single-event bindings of a match (excluding Kleene lists)."""
    return [value for value in bindings.values() if isinstance(value, Event)]

"""Evaluation engine base class, counters and shared post-processing.

The post-processing step (negation filtering and Kleene expansion) is the
same for both engine families and follows the paper's observation that
negation and Kleene closure are handled outside the reordered/tree plan
over the positive items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro.compile import CompiledPlanKernels, validate_compile_mode
from repro.errors import EngineError
from repro.events import Event
from repro.engine.match import Match, PartialMatch
from repro.engine.semantics import local_conditions_hold
from repro.patterns import Pattern, PatternItem
from repro.statistics import StatisticsCollector


@dataclass
class EngineCounters:
    """Work counters exposed by engines (used in reports and tests)."""

    events_processed: int = 0
    partial_matches_created: int = 0
    extension_attempts: int = 0
    matches_emitted: int = 0
    matches_suppressed_by_negation: int = 0
    candidates_pruned: int = 0

    def merge(self, other: "EngineCounters") -> "EngineCounters":
        return EngineCounters(
            events_processed=self.events_processed + other.events_processed,
            partial_matches_created=self.partial_matches_created
            + other.partial_matches_created,
            extension_attempts=self.extension_attempts + other.extension_attempts,
            matches_emitted=self.matches_emitted + other.matches_emitted,
            matches_suppressed_by_negation=self.matches_suppressed_by_negation
            + other.matches_suppressed_by_negation,
            candidates_pruned=self.candidates_pruned + other.candidates_pruned,
        )


class EvaluationEngine:
    """Base class for runtime evaluation engines.

    Subclasses implement :meth:`process`, which consumes one event and
    returns the matches completed by it.  The base class provides buffering
    of negated-item events, negation filtering, Kleene expansion and
    emission bookkeeping.

    Parameters
    ----------
    pattern:
        The pattern being evaluated.
    collector:
        Optional statistics collector receiving condition-evaluation
        feedback (arrival rates are fed by the enclosing CEP engine).
    emit_all_new_only_after:
        When set (by the plan-migration manager on a *new* engine), matches
        are emitted only if all their events arrived at or after this time.
    suppress_all_new_after:
        When set (on a *draining* engine), matches whose events all arrived
        at or after this time are suppressed — they are the new engine's
        responsibility.
    profiler:
        Optional :class:`~repro.obs.introspect.EngineProfiler`.  When set,
        the engine's working condition set is an instrumented copy built
        once here (plan-build time) and the hot-path hooks record edge
        outcomes and population samples.  When ``None`` the working set
        *is* ``pattern.conditions`` — the disabled path evaluates the
        original objects with no wrapper and no profiling branch inside
        condition evaluation.
    compile_mode:
        ``"interpreted"`` (default) evaluates conditions through their
        ``evaluate`` method; ``"compiled"`` lowers the plan's conditions
        to specialized kernels at plan-build time; ``"indexed"`` adds
        equality-predicate hash indexes over the candidate stores.
        Subclasses opt in by calling :meth:`_compile_plan` once
        ``self.plan`` is set.
    """

    def __init__(
        self,
        pattern: Pattern,
        collector: Optional[StatisticsCollector] = None,
        profiler=None,
        compile_mode: str = "interpreted",
    ):
        self.pattern = pattern
        self.collector = collector
        self.profiler = profiler
        self.compile_mode = validate_compile_mode(compile_mode)
        self._compiled: Optional[CompiledPlanKernels] = None
        if profiler is None:
            self._conditions = pattern.conditions
        else:
            self._conditions = profiler.instrument_conditions(pattern.conditions)
            profiler.plans_instrumented += 1
        self.counters = EngineCounters()
        self.suppress_all_new_after: Optional[float] = None
        self._negated_buffers: Dict[str, List[Event]] = {
            item.variable: [] for item in pattern.negated_items
        }
        self._kleene_buffers: Dict[str, List[Event]] = {
            item.variable: [] for item in pattern.kleene_items
        }
        self._emitted_keys: Set[frozenset] = set()

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        """Consume one event; return matches completed by it."""
        raise NotImplementedError

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Consume a batch of events; return matches completed by it.

        The base implementation is the per-event loop; engines with a
        columnar fast path (compiled modes) override it.
        """
        matches: List[Match] = []
        for event in events:
            matches.extend(self.process(event))
        return matches

    def _compile_plan(self) -> None:
        """Build compiled kernels for ``self.plan`` (per ``compile_mode``).

        Called by subclasses at the end of construction, once the plan
        attribute exists.  Restored (unpickled) engines re-enter this
        implicitly through :class:`~repro.compile.CompiledPlanKernels`'s
        own ``__setstate__``.
        """
        if self.compile_mode == "interpreted":
            self._compiled = None
            return
        self._compiled = CompiledPlanKernels(
            self.plan,
            profiler=self.profiler,
            indexed=self.compile_mode == "indexed",
        )

    def partial_match_count(self) -> int:
        """Number of partial matches currently stored (memory pressure proxy)."""
        raise NotImplementedError

    def state_occupancy(self) -> Dict[str, int]:
        """Partial matches held per operator state (NFA state / tree node)."""
        return {}

    def expire(self, now: float) -> None:
        """Drop buffered state that can no longer contribute to a match."""
        raise NotImplementedError

    def _delta_keyed_state(self):
        """Change-tracked collections for incremental snapshots.

        The emitted-key set is by far the largest (and append-only) piece
        of evaluation-engine state, so it is the piece shipped as diffs by
        :mod:`repro.streaming.delta`; the partial-match buffers churn per
        event and travel in the (small) skeleton instead.
        """
        return [("emitted", self, "_emitted_keys")]

    def _delta_frozen_state(self):
        """Immutable configuration roots for incremental snapshots.

        The pattern and the evaluation plan never mutate after
        construction (reoptimization *replaces* the plan object), so delta
        skeletons reference them as tokens instead of re-pickling them at
        every epoch.
        """
        roots = [self.pattern]
        plan = getattr(self, "plan", None)
        if plan is not None:
            roots.append(plan)
        return roots

    def snapshot_delta(self, since_epoch=None, epoch=None) -> bytes:
        """Framed incremental snapshot of the state changed since
        ``since_epoch``; see :func:`repro.streaming.delta.engine_snapshot_delta`."""
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self, since_epoch, epoch)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _buffer_special_items(self, event: Event) -> None:
        """Store events of negated / Kleene item types in their side buffers."""
        for item in self.pattern.negated_items:
            if item.event_type.name == event.type_name and local_conditions_hold(
                self.pattern, item.variable, event, self.collector
            ):
                self._negated_buffers[item.variable].append(event)
        for item in self.pattern.kleene_items:
            if item.event_type.name == event.type_name and local_conditions_hold(
                self.pattern, item.variable, event, None
            ):
                self._kleene_buffers[item.variable].append(event)

    def _expire_special_buffers(self, now: float) -> None:
        window = self.pattern.window
        if window == float("inf"):
            return
        cutoff = now - window
        for buffers in (self._negated_buffers, self._kleene_buffers):
            for variable, events in buffers.items():
                buffers[variable] = [e for e in events if e.timestamp >= cutoff]

    def _finalize(self, partial: PartialMatch, now: float) -> Optional[Match]:
        """Turn a completed positive binding into a reportable match.

        Applies negation filtering, Kleene expansion and duplicate
        suppression (duplicates can arise from Kleene expansion and from
        the plan-migration overlap).
        """
        bindings: Dict[str, object] = dict(partial.bindings)

        if self._violates_negation(bindings):
            self.counters.matches_suppressed_by_negation += 1
            return None

        bindings = self._expand_kleene(bindings)

        if self.suppress_all_new_after is not None:
            if all(
                event.timestamp >= self.suppress_all_new_after
                for event in PartialMatch(bindings).events()
            ):
                return None

        key = PartialMatch(bindings).event_ids()
        if key in self._emitted_keys:
            return None
        self._emitted_keys.add(key)

        self.counters.matches_emitted += 1
        return Match(self.pattern.name, bindings, detection_time=now)

    # ------------------------------------------------------------------
    # Negation
    # ------------------------------------------------------------------
    def _violates_negation(self, bindings: Mapping[str, object]) -> bool:
        """Whether some buffered negated event invalidates the match."""
        for item in self.pattern.negated_items:
            for candidate in self._negated_buffers.get(item.variable, ()):
                if self._negated_event_applies(item, candidate, bindings):
                    return True
        return False

    def _negated_event_applies(
        self, item: PatternItem, candidate: Event, bindings: Mapping[str, object]
    ) -> bool:
        """Whether ``candidate`` (of the negated type) invalidates ``bindings``."""
        trial = dict(bindings)
        trial[item.variable] = candidate
        # The negated event must satisfy the pattern conditions that couple it
        # to the bound events; otherwise it is irrelevant to this match.
        for condition in self.pattern.conditions.conditions_over(trial.keys()):
            if item.variable in condition.variables and not condition.evaluate(trial):
                return False
        if not self._within_window_with(bindings, candidate):
            return False
        if self.pattern.is_sequence():
            return self._respects_negated_position(item, candidate, bindings)
        return True

    def _within_window_with(
        self, bindings: Mapping[str, object], candidate: Event
    ) -> bool:
        window = self.pattern.window
        if window == float("inf"):
            return True
        timestamps = [candidate.timestamp]
        for value in bindings.values():
            if isinstance(value, list):
                timestamps.extend(e.timestamp for e in value)
            else:
                timestamps.append(value.timestamp)
        return max(timestamps) - min(timestamps) <= window

    def _respects_negated_position(
        self, item: PatternItem, candidate: Event, bindings: Mapping[str, object]
    ) -> bool:
        """Check that the negated event lies where the SEQ pattern forbids it.

        The forbidden region is between the latest bound event declared
        before the negated item and the earliest bound event declared after
        it (unbounded on a side with no such neighbour).
        """
        declared = [i.variable for i in self.pattern.items]
        negated_position = declared.index(item.variable)
        lower = None
        upper = None
        for variable, value in bindings.items():
            events = value if isinstance(value, list) else [value]
            variable_position = declared.index(variable)
            for event in events:
                if variable_position < negated_position:
                    lower = event.timestamp if lower is None else max(lower, event.timestamp)
                elif variable_position > negated_position:
                    upper = event.timestamp if upper is None else min(upper, event.timestamp)
        if lower is not None and candidate.timestamp <= lower:
            return False
        if upper is not None and candidate.timestamp >= upper:
            return False
        return True

    # ------------------------------------------------------------------
    # Kleene closure
    # ------------------------------------------------------------------
    def _expand_kleene(self, bindings: Dict[str, object]) -> Dict[str, object]:
        """Expand each Kleene binding to the maximal set of matching events.

        The engines match Kleene items with a single "seed" event; at
        emission time the binding grows to every buffered event of the type
        that satisfies the pattern conditions, the window and (for SEQ) the
        item's temporal position — the usual maximal-match semantics.
        """
        if not self.pattern.kleene_items:
            return bindings
        expanded = dict(bindings)
        for item in self.pattern.kleene_items:
            seed = bindings.get(item.variable)
            if seed is None:
                continue
            seed_events = seed if isinstance(seed, list) else [seed]
            others = {
                variable: value
                for variable, value in bindings.items()
                if variable != item.variable
            }
            selected: List[Event] = list(seed_events)
            selected_keys = {
                (e.type_name, e.timestamp, e.sequence_number) for e in selected
            }
            for candidate in self._kleene_buffers.get(item.variable, ()):
                key = (candidate.type_name, candidate.timestamp, candidate.sequence_number)
                if key in selected_keys:
                    continue
                if self._kleene_candidate_fits(item, candidate, others):
                    selected.append(candidate)
                    selected_keys.add(key)
            selected.sort(key=lambda e: (e.timestamp, e.sequence_number))
            expanded[item.variable] = selected
        return expanded

    def _kleene_candidate_fits(
        self, item: PatternItem, candidate: Event, others: Mapping[str, object]
    ) -> bool:
        trial = dict(others)
        trial[item.variable] = candidate
        for condition in self.pattern.conditions.conditions_over(trial.keys()):
            if item.variable in condition.variables and not condition.evaluate(trial):
                return False
        if not self._within_window_with(others, candidate):
            return False
        if self.pattern.is_sequence():
            from repro.engine.semantics import sequence_order_respected

            if not sequence_order_respected(self.pattern, others, item.variable, candidate):
                return False
        return True


def require_positive_variable(pattern: Pattern, variable: str) -> PatternItem:
    """Lookup helper raising :class:`EngineError` for unknown variables."""
    for item in pattern.positive_items:
        if item.variable == variable:
            return item
    raise EngineError(f"variable {variable!r} is not a positive item of {pattern.name!r}")

"""On-the-fly plan migration (Section 2.2 of the paper).

When the adaptation layer installs a new plan at time ``t0``, the previous
engine is not discarded immediately: partial matches containing at least
one event accepted before ``t0`` still belong to the old plan, while
matches consisting entirely of post-``t0`` events belong to the new plan.
The :class:`PlanMigrationManager` therefore keeps the old engine *draining*
for one pattern time window after the switch:

* the old engine keeps processing events (its existing buffers and partial
  matches may still complete), but suppresses matches made purely of
  post-switch events — those are the new engine's responsibility;
* the new engine starts with empty buffers, so it can only ever produce
  all-new matches.

At ``t0 + W`` every pre-switch event has expired from the old engine and it
is retired.  The two engines never emit the same match, so no duplicate
processing of results occurs.
"""

from __future__ import annotations

from typing import List

from repro.engine.base import EngineCounters, EvaluationEngine
from repro.engine.match import Match
from repro.errors import EngineError
from repro.events import Event


class PlanMigrationManager:
    """Owns the active engine plus any engines still draining after a switch."""

    def __init__(self, initial_engine: EvaluationEngine, window: float):
        if window <= 0:
            raise EngineError("migration manager requires a positive window")
        self._active = initial_engine
        self._window = float(window)
        # (engine, retirement_time) pairs; usually at most one entry.
        self._draining: List[tuple] = []
        self._retired_counters = EngineCounters()
        self.switches_performed = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def active_engine(self) -> EvaluationEngine:
        return self._active

    @property
    def draining_count(self) -> int:
        return len(self._draining)

    def engines(self) -> List[EvaluationEngine]:
        """Live engines, active first then draining (oldest switch first)."""
        return [self._active] + [engine for engine, _retirement in self._draining]

    def partial_match_count(self) -> int:
        total = self._active.partial_match_count()
        for engine, _retirement in self._draining:
            total += engine.partial_match_count()
        return total

    def total_counters(self) -> EngineCounters:
        """Counters aggregated over the active, draining and retired engines."""
        total = self._retired_counters
        total = total.merge(self._active.counters)
        for engine, _retirement in self._draining:
            total = total.merge(engine.counters)
        return total

    # ------------------------------------------------------------------
    # Plan switching
    # ------------------------------------------------------------------
    def _delta_keyed_state(self):
        """Change-tracked collections of the active + draining engines.

        Names are positional (``active`` / ``drainingN``): after a plan
        switch the same position refers to a different engine, which the
        delta diff detects and degrades to a self-contained reset for that
        slot — correct, merely bigger for the one post-switch delta.
        """
        slots = [
            (f"active.{name}", holder, attr)
            for name, holder, attr in self._active._delta_keyed_state()
        ]
        for index, (engine, _retirement) in enumerate(self._draining):
            slots.extend(
                (f"draining{index}.{name}", holder, attr)
                for name, holder, attr in engine._delta_keyed_state()
            )
        return slots

    def _delta_frozen_state(self):
        """Immutable roots of the active + draining engines (delta hook)."""
        roots = list(self._active._delta_frozen_state())
        for engine, _retirement in self._draining:
            roots.extend(engine._delta_frozen_state())
        return roots

    def switch_to(self, new_engine: EvaluationEngine, switch_time: float) -> None:
        """Install a new engine; the previous one drains for one window."""
        previous = self._active
        previous.suppress_all_new_after = switch_time
        self._draining.append((previous, switch_time + self._window))
        self._active = new_engine
        self.switches_performed += 1

    def _retire_expired(self, now: float) -> None:
        still_draining = []
        for engine, retirement in self._draining:
            if now >= retirement:
                self._retired_counters = self._retired_counters.merge(engine.counters)
            else:
                still_draining.append((engine, retirement))
        self._draining = still_draining

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        """Feed one event to the active engine and to any draining engines."""
        now = event.timestamp
        if self._draining:
            self._retire_expired(now)
        matches = self._active.process(event)
        for engine, _retirement in self._draining:
            matches.extend(engine.process(event))
        return matches

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Feed a batch segment to the active and draining engines.

        Retirement is checked once, at the segment's first timestamp, so a
        draining engine may see up to one segment of extra events past its
        retirement time.  That cannot change the output: any non-suppressed
        match from a draining engine needs at least one pre-switch event,
        and such events fail the window check at or after retirement time.
        """
        if not events:
            return []
        if self._draining:
            self._retire_expired(events[0].timestamp)
        matches = self._active.process_batch(events)
        for engine, _retirement in self._draining:
            matches.extend(engine.process_batch(events))
        return matches

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PlanMigrationManager(active={type(self._active).__name__}, "
            f"draining={len(self._draining)}, switches={self.switches_performed})"
        )

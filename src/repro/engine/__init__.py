"""Runtime evaluation engines.

Two engines execute evaluation plans over event streams:

* :class:`LazyNFAEngine` — executes order-based plans following the lazy
  evaluation principle (the rarest event type initiates partial matches and
  the remaining steps are satisfied from buffered history or later
  arrivals).
* :class:`TreeEvaluationEngine` — executes tree-based (ZStream) plans by
  buffering events at leaves and joining sub-matches bottom-up.

:class:`PlanMigrationManager` implements the on-the-fly plan replacement
strategy of Section 2.2 (old and new plan coexist for one time window), and
:class:`AdaptiveCEPEngine` ties everything together into the full
detection–adaptation loop of Algorithm 1.
"""

from repro.engine.match import PartialMatch, Match
from repro.engine.base import EvaluationEngine, EngineCounters
from repro.engine.nfa import LazyNFAEngine
from repro.engine.tree import TreeEvaluationEngine
from repro.engine.migration import PlanMigrationManager
from repro.engine.cep_engine import AdaptiveCEPEngine, RunResult, engine_for_plan
from repro.engine.multi_pattern import MultiPatternEngine
from repro.engine.protocol import CEPEngine
from repro.engine.state import (
    is_multi_snapshot,
    is_shard_snapshot,
    restore_engine,
    restore_multi_state,
    restore_shard_states,
    snapshot_engine,
    snapshot_multi_state,
    snapshot_shard_states,
)

__all__ = [
    "CEPEngine",
    "PartialMatch",
    "Match",
    "EvaluationEngine",
    "EngineCounters",
    "LazyNFAEngine",
    "TreeEvaluationEngine",
    "PlanMigrationManager",
    "AdaptiveCEPEngine",
    "MultiPatternEngine",
    "RunResult",
    "engine_for_plan",
    "snapshot_engine",
    "restore_engine",
    "snapshot_shard_states",
    "restore_shard_states",
    "is_shard_snapshot",
    "snapshot_multi_state",
    "restore_multi_state",
    "is_multi_snapshot",
]

"""The common evaluator surface.

Three engine facades execute patterns over event streams — the
single-pattern :class:`~repro.engine.AdaptiveCEPEngine`, the shared
one-pass :class:`~repro.engine.MultiPatternEngine` and the sharded
:class:`~repro.parallel.ParallelCEPEngine`.  They are interchangeable
behind :class:`CEPEngine`: the streaming pipeline, the experiment
runner, checkpointing workers and the CLI all program against this
protocol, so deployments can swap facades without touching call sites.

Every conforming engine agrees on the return shapes:

``process(event)``
    evaluates one event immediately and returns the (possibly empty)
    ``list[Match]`` it completes — never ``None``.
``process_batch(events)``
    evaluates a batch in stream order and returns the concatenated
    ``list[Match]``, exactly the matches event-at-a-time processing
    would have produced.
``run(stream)``
    consumes a whole stream and returns a
    :class:`~repro.engine.RunResult` (matches + run metrics + plan
    history).
``snapshot_state()`` / ``restore_state(blob)``
    serialize to / rebuild from an opaque ``bytes`` blob with a
    self-describing header, so
    :func:`~repro.engine.state.restore_engine` can route any blob to
    the facade that wrote it.
``partial_match_count()``
    number of live partial matches across all internal engines.
``plan_history``
    descriptions of every plan installed so far, in adoption order.
``introspection()``
    a JSON-serializable dict of engine internals for observability.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

from repro.engine.cep_engine import RunResult
from repro.engine.match import Match
from repro.events import Event


@runtime_checkable
class CEPEngine(Protocol):
    """Structural type of every engine facade (see module docstring).

    ``runtime_checkable``, so ``isinstance(engine, CEPEngine)`` verifies a
    facade exposes the full surface (signatures are not checked — this is
    a structural, not behavioural, guarantee).
    """

    def process(self, event: Event) -> List[Match]:
        ...

    def process_batch(self, events: List[Event]) -> List[Match]:
        ...

    def run(self, stream: Iterable[Event]) -> RunResult:
        ...

    def snapshot_state(self) -> bytes:
        ...

    def partial_match_count(self) -> int:
        ...

    @property
    def plan_history(self) -> List[str]:
        ...

    def introspection(self) -> dict:
        ...

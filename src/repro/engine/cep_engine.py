"""The adaptive CEP engine facade (Algorithm 1 of the paper).

:class:`AdaptiveCEPEngine` wires together every component of the ACEP
architecture (Figure 2 in the paper):

* the runtime evaluation mechanism (lazy NFA or tree engine, chosen
  automatically from the plan type);
* the statistics estimation component (an online
  :class:`~repro.statistics.StatisticsCollector` fed from the stream, or an
  externally supplied :class:`~repro.statistics.StatisticsProvider` such as
  the dataset simulators' ground-truth models);
* the optimizer — the reoptimizing decision function ``D`` (a
  :class:`~repro.adaptive.ReoptimizationPolicy`) and the plan generator
  ``A`` (a :class:`~repro.optimizer.PlanGenerator`), orchestrated by an
  :class:`~repro.adaptive.AdaptationController`;
* plan migration via :class:`~repro.engine.PlanMigrationManager`.

The engine exposes two entry points: :meth:`process` for event-at-a-time
use (examples, interactive use) and :meth:`run` which consumes an entire
stream and returns a :class:`RunResult` with the matches and the
performance metrics the experiments report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.adaptive import AdaptationController, ReoptimizationPolicy
from repro.compile import validate_compile_mode
from repro.engine.base import EvaluationEngine
from repro.engine.match import Match
from repro.engine.migration import PlanMigrationManager
from repro.engine.nfa import LazyNFAEngine
from repro.engine.tree import TreeEvaluationEngine
from repro.errors import EngineError
from repro.events import Event, EventStream
from repro.metrics import RunMetrics
from repro.optimizer import PlanGenerator
from repro.patterns import Pattern
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.plans.base import EvaluationPlan
from repro.statistics import (
    StatisticsCollector,
    StatisticsProvider,
    StatisticsSnapshot,
)


def engine_for_plan(
    plan: EvaluationPlan,
    collector: Optional[StatisticsCollector] = None,
    profiler=None,
    compile_mode: str = "interpreted",
) -> EvaluationEngine:
    """Instantiate the runtime engine matching a plan's family."""
    if isinstance(plan, OrderBasedPlan):
        return LazyNFAEngine(
            plan, collector, profiler=profiler, compile_mode=compile_mode
        )
    if isinstance(plan, TreeBasedPlan):
        return TreeEvaluationEngine(
            plan, collector, profiler=profiler, compile_mode=compile_mode
        )
    raise EngineError(f"no runtime engine available for plan type {type(plan).__name__}")


@dataclass
class RunResult:
    """Outcome of running the engine over a full stream."""

    matches: List[Match]
    metrics: RunMetrics
    plan_history: List[str] = field(default_factory=list)

    @property
    def match_count(self) -> int:
        return len(self.matches)


class AdaptiveCEPEngine:
    """Adaptive detection of one pattern over an event stream.

    Parameters
    ----------
    pattern:
        The pattern to detect (a single, non-composite pattern; see
        :class:`~repro.engine.MultiPatternEngine` for disjunctions).
    planner:
        The plan-generation algorithm ``A``.
    policy:
        The reoptimizing decision function ``D``.
    statistics_provider:
        Optional external statistics source (e.g. a dataset simulator's
        ground-truth provider).  When omitted the engine maintains its own
        sliding-window estimates from the stream it processes.
    initial_snapshot:
        Statistics used to build the initial plan.  When omitted, a uniform
        snapshot (all rates equal) is used, which yields the pattern-order
        plan — the same cold-start behaviour as the paper's systems.
    monitoring_interval:
        Stream-time between consecutive evaluations of ``D``.
    statistics_window:
        Sliding-window length of the internal collector (defaults to four
        pattern windows).
    introspect:
        Opt into engine introspection (:mod:`repro.obs.introspect`): a
        shared :class:`~repro.obs.introspect.EngineProfiler` instruments
        every evaluation engine this facade builds, and a
        :class:`~repro.obs.introspect.DriftMonitor` tracks the installed
        plan's predicted cost/selectivities against observed statistics.
        Off by default — disabled engines are built exactly as before.
    compile_mode:
        Execution mode for every evaluation engine this facade builds
        (including post-adaptation replacements, which recompile for
        free at plan-build time): ``"interpreted"`` (default),
        ``"compiled"`` (plan-build-time condition kernels) or
        ``"indexed"`` (kernels plus equality-predicate candidate
        indexes).  All modes emit byte-identical matches.
    statistics_collector:
        Externally owned collector to use instead of building one.  The
        multi-pattern evaluator passes per-pattern collectors that read
        shared per-event-type estimators, so N patterns over one stream
        count every arrival exactly once.
    engine_factory:
        Callable ``(plan, collector, profiler, compile_mode) -> engine``
        replacing :func:`engine_for_plan` for every evaluation engine this
        facade builds (initial and post-adaptation).  The multi-pattern
        evaluator uses it to route plans with shareable prefixes into
        shared-prefix groups.
    """

    def __init__(
        self,
        pattern: Pattern,
        planner: PlanGenerator,
        policy: ReoptimizationPolicy,
        statistics_provider: Optional[StatisticsProvider] = None,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        monitoring_interval: float = 1.0,
        statistics_window: Optional[float] = None,
        introspect: bool = False,
        compile_mode: str = "interpreted",
        statistics_collector: Optional[StatisticsCollector] = None,
        engine_factory=None,
    ):
        if monitoring_interval <= 0:
            raise EngineError("monitoring_interval must be positive")
        self.pattern = pattern
        self.planner = planner
        self.policy = policy
        self._provider = statistics_provider
        self._monitoring_interval = float(monitoring_interval)
        self.compile_mode = validate_compile_mode(compile_mode)
        self._engine_factory = engine_factory

        window = pattern.window if pattern.window != float("inf") else 100.0
        if statistics_collector is not None:
            self._collector = statistics_collector
        else:
            self._collector = StatisticsCollector(
                window=statistics_window or 5.0 * window
            )
        self._collector.register_pattern(pattern)

        self._profiler = None
        self._drift = None
        if introspect:
            # Imported lazily: repro.obs must stay optional for the core
            # engine layer, and repro.obs.introspect imports conditions.
            from repro.obs.introspect import DriftMonitor, EngineProfiler

            self._profiler = EngineProfiler()
            self._drift = DriftMonitor()

        if initial_snapshot is None:
            initial_snapshot = self._uniform_snapshot()
        self.controller = AdaptationController(
            pattern, planner, policy, initial_snapshot
        )
        self.controller.drift_monitor = self._drift
        if self._drift is not None:
            self._drift.record_plan(self.controller.current_result, pattern)
        initial_engine = self._build_engine(self.controller.current_plan)
        self._migration = PlanMigrationManager(initial_engine, window=window)
        self._next_monitor_time: Optional[float] = None
        self._plan_history: List[str] = [self.controller.current_plan.describe()]

    def _build_engine(self, plan: EvaluationPlan) -> EvaluationEngine:
        factory = self._engine_factory or engine_for_plan
        return factory(
            plan,
            self._collector,
            profiler=self._profiler,
            compile_mode=self.compile_mode,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_plan(self) -> EvaluationPlan:
        return self.controller.current_plan

    @property
    def collector(self) -> StatisticsCollector:
        return self._collector

    @property
    def migration_manager(self) -> PlanMigrationManager:
        return self._migration

    @property
    def plan_history(self) -> List[str]:
        return list(self._plan_history)

    def reoptimization_count(self) -> int:
        """Number of actual plan replacements performed so far."""
        return self._migration.switches_performed

    def partial_match_count(self) -> int:
        """Live partial matches across the active and draining engines."""
        return self._migration.partial_match_count()

    def evaluation_engines(self) -> List[EvaluationEngine]:
        """All live evaluation engines (active first, then draining)."""
        return self._migration.engines()

    @property
    def profiler(self):
        """The shared :class:`EngineProfiler`, or ``None`` when disabled."""
        return self._profiler

    @property
    def drift_monitor(self):
        """The :class:`DriftMonitor`, or ``None`` when disabled."""
        return self._drift

    def introspection(self) -> dict:
        """One frame of engine internals (plan, populations, profile, drift).

        Always available; the ``profile`` and ``drift`` sections are
        present only when the engine was built with ``introspect=True``.
        """
        active = self._migration.active_engine
        frame: dict = {
            "pattern": self.pattern.name,
            "plan": self.controller.current_plan.describe(),
            "reoptimizations": self.reoptimization_count(),
            "counters": vars(self._migration.total_counters()).copy(),
            "partial_matches": {
                "live": self._migration.partial_match_count(),
                "per_state": active.state_occupancy(),
                "high_water": (
                    self._profiler.partial_matches_high_water
                    if self._profiler is not None
                    else 0
                ),
            },
        }
        if self._profiler is not None:
            frame["profile"] = self._profiler.frame()
        if self._drift is not None:
            observed = (
                self._collector.snapshot()
                if self._drift.observed_snapshot is None
                else None
            )
            frame["drift"] = self._drift.summary(observed)
        return frame

    def _uniform_snapshot(self) -> StatisticsSnapshot:
        rates = {item.event_type.name: 1.0 for item in self.pattern.items}
        return StatisticsSnapshot(rates, {}, timestamp=0.0)

    # ------------------------------------------------------------------
    # State snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def __getstate__(self):
        # An injected engine factory (the multi-pattern share manager) is
        # a view onto shared state owned elsewhere — never serialize it
        # through a per-pattern frame.  MultiPatternEngine re-installs it
        # after restore; a standalone restore degrades gracefully to the
        # default factory.
        state = dict(self.__dict__)
        state["_engine_factory"] = None
        return state

    def snapshot_state(self) -> bytes:
        """Serialize the full engine state (partial matches, statistics,
        adaptation state) so processing can later resume exactly where it
        stopped.  See :func:`repro.engine.state.snapshot_engine`."""
        from repro.engine.state import snapshot_engine

        return snapshot_engine(self)

    @classmethod
    def restore_state(cls, blob: bytes) -> "AdaptiveCEPEngine":
        """Rebuild an engine from a :meth:`snapshot_state` blob."""
        from repro.engine.state import restore_engine

        engine = restore_engine(blob)
        if not isinstance(engine, cls):
            raise EngineError(
                f"snapshot holds a {type(engine).__name__}, not a {cls.__name__}"
            )
        return engine

    def _delta_keyed_state(self):
        """Change-tracked collections (incremental-snapshot hook).

        The evaluation engines' emitted-key sets dominate long-run state;
        statistics, partial matches and adaptation state churn every event
        and travel in the skeleton (see :mod:`repro.streaming.delta`).
        """
        slots = [
            (f"migration.{name}", holder, attr)
            for name, holder, attr in self._migration._delta_keyed_state()
        ]
        slots.extend(
            (f"stats.{name}", holder, attr)
            for name, holder, attr in self._collector._delta_keyed_state()
        )
        return slots

    def _delta_frozen_state(self):
        """Immutable roots (pattern, plans, stateless planner) whose
        references delta skeletons ship as tokens instead of re-pickling.
        The policy and controller are *not* listed: their decision state
        mutates between epochs."""
        return [self.pattern, self.planner, *self._migration._delta_frozen_state()]

    def snapshot_delta(self, since_epoch=None, epoch=None) -> bytes:
        """Framed incremental snapshot of the state changed since the
        ``since_epoch`` snapshot (partial-match/emission/statistics deltas
        only); see :func:`repro.streaming.delta.engine_snapshot_delta`."""
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self, since_epoch, epoch)

    # ------------------------------------------------------------------
    # Event-at-a-time API
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        """Process one event: adapt if a monitoring period elapsed, then match."""
        now = event.timestamp
        if self._next_monitor_time is None:
            self._next_monitor_time = now + self._monitoring_interval
        elif now >= self._next_monitor_time:
            self._run_adaptation_step(now)
            self._next_monitor_time = now + self._monitoring_interval

        self._collector.observe_event(event)
        return self._migration.process(event)

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Process a batch of events with per-event adaptation ordering.

        The batch is split into segments at monitoring boundaries, so the
        decision function sees exactly the statistics state it would see
        in event-at-a-time mode; within a segment the engines take their
        batch fast path (columnar acceptance sweeps in compiled modes).
        """
        matches: List[Match] = []
        segment: List[Event] = []
        for event in events:
            now = event.timestamp
            if self._next_monitor_time is None:
                self._next_monitor_time = now + self._monitoring_interval
            elif now >= self._next_monitor_time:
                if segment:
                    matches.extend(self._flush_segment(segment))
                    segment = []
                self._run_adaptation_step(now)
                self._next_monitor_time = now + self._monitoring_interval
            segment.append(event)
        if segment:
            matches.extend(self._flush_segment(segment))
        return matches

    def _flush_segment(self, segment: List[Event]) -> List[Match]:
        for event in segment:
            self._collector.observe_event(event)
        return self._migration.process_batch(segment)

    def _run_adaptation_step(self, now: float) -> None:
        """One iteration of the detection–adaptation loop's decision phase."""
        if self._provider is not None:
            snapshot = self._provider.snapshot(now)
        else:
            snapshot = self._collector.snapshot(now)
        if self._drift is not None:
            self._drift.observe(snapshot)
        new_plan = self.controller.update(snapshot)
        if new_plan is not None:
            new_engine = self._build_engine(new_plan)
            self._migration.switch_to(new_engine, switch_time=now)
            self._plan_history.append(new_plan.describe())
            if self._drift is not None:
                self._drift.record_plan(self.controller.current_result, self.pattern)
        elif self._engine_factory is not None:
            # The policy keeps the plan, but a sharing-aware factory (the
            # multi-pattern prefix-share manager) may have accumulated rate
            # evidence that now scores this pattern into a shared-prefix
            # group.  Rebuilding the engine for the *same* plan routes it
            # through the factory again; the ordinary migration contract
            # keeps the match set identical across the switch.
            resharing = getattr(self._engine_factory, "wants_resharing", None)
            if resharing is not None and resharing(
                self.controller.current_plan,
                self._migration.active_engine,
                self._collector,
            ):
                new_engine = self._build_engine(self.controller.current_plan)
                self._migration.switch_to(new_engine, switch_time=now)
                self._plan_history.append(
                    f"{self.controller.current_plan.describe()} [shared-prefix rewire]"
                )

    # ------------------------------------------------------------------
    # Whole-stream API
    # ------------------------------------------------------------------
    def run(self, stream: "EventStream | Iterable[Event]") -> RunResult:
        """Process an entire stream and report matches plus run metrics."""
        matches: List[Match] = []
        events_processed = 0
        started = time.perf_counter()
        for event in stream:
            matches.extend(self.process(event))
            events_processed += 1
        duration = time.perf_counter() - started

        counters = self._migration.total_counters()
        adaptation = self.controller.statistics
        metrics = RunMetrics(
            events_processed=events_processed,
            matches_emitted=len(matches),
            duration_seconds=duration,
            reoptimizations=self._migration.switches_performed,
            decisions_evaluated=adaptation.decisions_evaluated,
            time_in_decision=adaptation.time_in_decision,
            time_in_generation=adaptation.time_in_generation,
            partial_matches_created=counters.partial_matches_created,
            extension_attempts=counters.extension_attempts,
        )
        return RunResult(matches=matches, metrics=metrics, plan_history=self.plan_history)

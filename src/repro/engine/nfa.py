"""Lazy NFA engine for order-based plans.

The engine follows the lazy-evaluation principle of Kolchinsky et al.: the
first event type in the plan order *initiates* partial matches, and every
subsequent step is satisfied either from buffered history (events of later
plan steps that happened to arrive earlier) or from future arrivals.

Matching discipline
-------------------
For every incoming event ``e``:

1. ``e`` is appended to the buffers of the positive variables it can serve
   (local single-variable conditions permitting) and to the negated/Kleene
   side buffers.
2. Every stored partial match whose *next* plan step accepts ``e``'s type
   is tentatively extended with ``e`` (temporal order, window and newly
   bound conditions are checked).
3. If ``e`` serves the plan's initiator variable, a fresh partial match is
   opened with it.
4. Every partial match created in steps 2–3 is then recursively extended
   with *buffered* (earlier) events for its remaining steps, so matches
   whose plan order disagrees with arrival order are still found.

With this discipline every complete match is materialised exactly once —
during the processing of its last-arriving event — and the number of live
partial matches tracks the quantity the plan-generation cost model
minimises.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.base import EvaluationEngine
from repro.engine.match import Match, PartialMatch
from repro.engine.semantics import (
    evaluate_new_conditions,
    local_conditions_hold,
    sequence_order_respected,
    window_respected,
)
from repro.errors import EngineError
from repro.events import Event
from repro.plans import OrderBasedPlan
from repro.statistics import StatisticsCollector


class LazyNFAEngine(EvaluationEngine):
    """Executes an :class:`OrderBasedPlan` over an event stream."""

    def __init__(
        self,
        plan: OrderBasedPlan,
        collector: Optional[StatisticsCollector] = None,
        expiry_interval_fraction: float = 0.25,
        profiler=None,
    ):
        if not isinstance(plan, OrderBasedPlan):
            raise EngineError("LazyNFAEngine requires an OrderBasedPlan")
        super().__init__(plan.pattern, collector, profiler)
        self.plan = plan
        self._order = plan.order
        self._depth = len(self._order)
        # Buffered events per positive variable (local conditions already hold).
        self._buffers: Dict[str, List[Event]] = {v: [] for v in self._order}
        # Partial matches indexed by the variable they are waiting for next.
        self._waiting: Dict[str, List[PartialMatch]] = {v: [] for v in self._order}
        self._type_to_variables: Dict[str, List[str]] = {}
        for variable in self._order:
            type_name = plan.pattern.item_by_variable(variable).event_type.name
            self._type_to_variables.setdefault(type_name, []).append(variable)
        window = plan.pattern.window
        self._expiry_interval = (
            window * expiry_interval_fraction if window != float("inf") else float("inf")
        )
        self._last_expiry = float("-inf")

    # ------------------------------------------------------------------
    # EvaluationEngine interface
    # ------------------------------------------------------------------
    def partial_match_count(self) -> int:
        return sum(len(pms) for pms in self._waiting.values())

    def state_occupancy(self) -> Dict[str, int]:
        return {
            variable: len(pms) for variable, pms in self._waiting.items() if pms
        }

    def buffered_event_count(self) -> int:
        """Number of events currently buffered across all positive variables."""
        return sum(len(events) for events in self._buffers.values())

    def expire(self, now: float) -> None:
        window = self.pattern.window
        if window == float("inf"):
            return
        cutoff = now - window
        for variable, events in self._buffers.items():
            self._buffers[variable] = [e for e in events if e.timestamp >= cutoff]
        for variable, matches in self._waiting.items():
            self._waiting[variable] = [
                pm for pm in matches if pm.min_timestamp is None or pm.min_timestamp >= cutoff
            ]
        self._expire_special_buffers(now)
        self._last_expiry = now

    def process(self, event: Event) -> List[Match]:
        now = event.timestamp
        self.counters.events_processed += 1
        if now - self._last_expiry >= self._expiry_interval:
            self.expire(now)
        self._buffer_special_items(event)

        accepted_variables = self._accept_into_buffers(event)
        if not accepted_variables:
            return []

        new_matches = self._extend_with_event(event, accepted_variables, now)
        if self._order[0] in accepted_variables:
            initiator = PartialMatch({self._order[0]: event})
            self.counters.partial_matches_created += 1
            new_matches.append(initiator)

        completed = self._extend_from_buffers(new_matches, event, now)

        if self.profiler is not None:
            self.profiler.observe_population(self.partial_match_count())

        matches: List[Match] = []
        for partial in completed:
            match = self._finalize(partial, now)
            if match is not None:
                matches.append(match)
        return matches

    # ------------------------------------------------------------------
    # Matching steps
    # ------------------------------------------------------------------
    def _accept_into_buffers(self, event: Event) -> List[str]:
        """Buffer the event under every positive variable it can serve."""
        accepted: List[str] = []
        for variable in self._type_to_variables.get(event.type_name, ()):
            held = local_conditions_hold(
                self.pattern, variable, event, self.collector,
                conditions=self._conditions,
            )
            if self.profiler is not None:
                self.profiler.record_edge(f"buffer[{variable}]", held)
            if held:
                self._buffers[variable].append(event)
                accepted.append(variable)
        return accepted

    def _extend_with_event(
        self, event: Event, accepted_variables: List[str], now: float
    ) -> List[PartialMatch]:
        """Extend stored partial matches whose next step accepts this event."""
        extended: List[PartialMatch] = []
        for variable in accepted_variables:
            for partial in self._waiting[variable]:
                candidate = self._try_extend(partial, variable, event, now)
                if candidate is not None:
                    extended.append(candidate)
        return extended

    def _extend_from_buffers(
        self, new_matches: List[PartialMatch], current_event: Event, now: float
    ) -> List[PartialMatch]:
        """Recursively extend fresh partial matches with buffered history.

        Every partial match created along the way is also registered as
        "waiting" so that future events can extend it; complete bindings are
        returned for finalisation.
        """
        completed: List[PartialMatch] = []
        frontier = list(new_matches)
        while frontier:
            next_frontier: List[PartialMatch] = []
            for partial in frontier:
                if partial.size == self._depth:
                    completed.append(partial)
                    continue
                next_variable = self._order[partial.size]
                self._waiting[next_variable].append(partial)
                for buffered in self._buffers[next_variable]:
                    if buffered is current_event or partial.contains_event(buffered):
                        continue
                    candidate = self._try_extend(partial, next_variable, buffered, now)
                    if candidate is not None:
                        next_frontier.append(candidate)
            frontier = next_frontier
        return completed

    def _try_extend(
        self, partial: PartialMatch, variable: str, event: Event, now: float
    ) -> Optional[PartialMatch]:
        """Attempt to bind ``event`` as ``variable`` in ``partial``."""
        self.counters.extension_attempts += 1
        candidate: Optional[PartialMatch] = None
        if (
            not partial.contains_event(event)
            and window_respected(partial.bindings, event, self.pattern.window)
            and sequence_order_respected(self.pattern, partial.bindings, variable, event)
            and evaluate_new_conditions(
                self.pattern, partial.bindings, variable, event, self.collector, now,
                conditions=self._conditions,
            )
        ):
            self.counters.partial_matches_created += 1
            candidate = partial.extended(variable, event)
        if self.profiler is not None:
            self.profiler.record_edge(f"extend[{variable}]", candidate is not None)
        return candidate

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LazyNFAEngine(order={'->'.join(self._order)}, "
            f"partial_matches={self.partial_match_count()})"
        )

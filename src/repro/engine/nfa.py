"""Lazy NFA engine for order-based plans.

The engine follows the lazy-evaluation principle of Kolchinsky et al.: the
first event type in the plan order *initiates* partial matches, and every
subsequent step is satisfied either from buffered history (events of later
plan steps that happened to arrive earlier) or from future arrivals.

Matching discipline
-------------------
For every incoming event ``e``:

1. ``e`` is appended to the buffers of the positive variables it can serve
   (local single-variable conditions permitting) and to the negated/Kleene
   side buffers.
2. Every stored partial match whose *next* plan step accepts ``e``'s type
   is tentatively extended with ``e`` (temporal order, window and newly
   bound conditions are checked).
3. If ``e`` serves the plan's initiator variable, a fresh partial match is
   opened with it.
4. Every partial match created in steps 2–3 is then recursively extended
   with *buffered* (earlier) events for its remaining steps, so matches
   whose plan order disagrees with arrival order are still found.

With this discipline every complete match is materialised exactly once —
during the processing of its last-arriving event — and the number of live
partial matches tracks the quantity the plan-generation cost model
minimises.

Execution modes
---------------
``compile_mode="interpreted"`` runs the historical per-event dispatch
through :mod:`repro.engine.semantics`.  ``"compiled"`` swaps every check
in :meth:`_try_extend` and :meth:`_accept_into_buffers` for the plan's
:class:`~repro.compile.CompiledPlanKernels` (and sweeps acceptance
predicates columnar-wise in :meth:`process_batch`).  ``"indexed"`` adds
equality hash indexes over both candidate stores — the waiting partial
matches and the buffered events of each step — so join probes only touch
candidates whose equality key can match; pruned candidates are counted in
``counters.candidates_pruned`` and reported to the statistics collector
as bulk failed attempts.  All three modes emit byte-identical matches.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compile import EqualityIndex, EventBatchColumns
from repro.engine.base import EvaluationEngine
from repro.engine.match import Match, PartialMatch
from repro.engine.semantics import (
    evaluate_new_conditions,
    local_conditions_hold,
    sequence_order_respected,
    window_respected,
)
from repro.errors import EngineError
from repro.events import Event
from repro.plans import OrderBasedPlan
from repro.statistics import StatisticsCollector


class LazyNFAEngine(EvaluationEngine):
    """Executes an :class:`OrderBasedPlan` over an event stream."""

    def __init__(
        self,
        plan: OrderBasedPlan,
        collector: Optional[StatisticsCollector] = None,
        expiry_interval_fraction: float = 0.25,
        profiler=None,
        compile_mode: str = "interpreted",
    ):
        if not isinstance(plan, OrderBasedPlan):
            raise EngineError("LazyNFAEngine requires an OrderBasedPlan")
        super().__init__(plan.pattern, collector, profiler, compile_mode)
        self.plan = plan
        self._order = plan.order
        self._depth = len(self._order)
        # Buffered events per positive variable (local conditions already hold).
        self._buffers: Dict[str, List[Event]] = {v: [] for v in self._order}
        # Partial matches indexed by the variable they are waiting for next.
        self._waiting: Dict[str, List[PartialMatch]] = {v: [] for v in self._order}
        self._type_to_variables: Dict[str, List[str]] = {}
        for variable in self._order:
            type_name = plan.pattern.item_by_variable(variable).event_type.name
            self._type_to_variables.setdefault(type_name, []).append(variable)
        window = plan.pattern.window
        self._expiry_interval = (
            window * expiry_interval_fraction if window != float("inf") else float("inf")
        )
        self._last_expiry = float("-inf")
        self._compile_plan()

    def _compile_plan(self) -> None:
        super()._compile_plan()
        # Equality indexes shadow the candidate stores of the steps that
        # carry an index spec; both are rebuilt from scratch on restore
        # (and after expiry), never pickled.
        self._index_specs = {}
        self._waiting_index: Dict[str, EqualityIndex] = {}
        self._buffer_index: Dict[str, EqualityIndex] = {}
        if self._compiled is not None and self._compiled.indexed:
            for step in self._compiled.steps:
                if step.index_spec is not None:
                    self._index_specs[step.variable] = step.index_spec
                    self._waiting_index[step.variable] = EqualityIndex()
                    self._buffer_index[step.variable] = EqualityIndex()

    def __setstate__(self, state):
        # Engines travel through checkpoints via plain __dict__ pickling;
        # the equality indexes hold the same objects as the stores they
        # shadow, so they are dropped pre-pickle and rebuilt here.
        self.__dict__.update(state)
        self._rebuild_indexes()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_waiting_index"] = {}
        state["_buffer_index"] = {}
        return state

    # ------------------------------------------------------------------
    # EvaluationEngine interface
    # ------------------------------------------------------------------
    def partial_match_count(self) -> int:
        return sum(len(pms) for pms in self._waiting.values())

    def state_occupancy(self) -> Dict[str, int]:
        return {
            variable: len(pms) for variable, pms in self._waiting.items() if pms
        }

    def buffered_event_count(self) -> int:
        """Number of events currently buffered across all positive variables."""
        return sum(len(events) for events in self._buffers.values())

    def expire(self, now: float) -> None:
        window = self.pattern.window
        if window == float("inf"):
            return
        cutoff = now - window
        for variable, events in self._buffers.items():
            self._buffers[variable] = [e for e in events if e.timestamp >= cutoff]
        for variable, matches in self._waiting.items():
            self._waiting[variable] = [
                pm for pm in matches if pm.min_timestamp is None or pm.min_timestamp >= cutoff
            ]
        self._expire_special_buffers(now)
        if self._index_specs:
            self._rebuild_indexes()
        self._last_expiry = now

    def _rebuild_indexes(self) -> None:
        for variable, spec in self._index_specs.items():
            buffer_index = self._buffer_index[variable] = EqualityIndex()
            attribute = spec.event_attribute
            for event in self._buffers[variable]:
                buffer_index.add(event.get(attribute), event)
            waiting_index = self._waiting_index[variable] = EqualityIndex()
            for partial in self._waiting[variable]:
                self._index_waiting_partial(waiting_index, spec, partial)

    @staticmethod
    def _index_waiting_partial(index: EqualityIndex, spec, partial: PartialMatch) -> None:
        bound = partial.bindings[spec.bound_variable]
        if isinstance(bound, list):
            index.add_unkeyed(partial)
        else:
            index.add(bound.get(spec.bound_attribute), partial)

    def process(self, event: Event) -> List[Match]:
        return self._process_event(event, None, 0)

    def process_batch(self, events: List[Event]) -> List[Match]:
        """Batch entry point: columnar acceptance sweep in compiled modes.

        The struct-of-arrays view materialises each attribute referenced
        by an acceptance predicate once for the whole batch, and the
        per-variable verdict bitmasks replace the per-event local kernel
        calls inside :meth:`_accept_into_buffers`.
        """
        if self._compiled is None or not events:
            return super().process_batch(events)
        columns = EventBatchColumns(events)
        verdicts = self._compiled.local_verdicts(columns, self.collector)
        matches: List[Match] = []
        for row, event in enumerate(columns.events):
            matches.extend(self._process_event(event, verdicts, row))
        return matches

    def _process_event(self, event: Event, verdicts, row: int) -> List[Match]:
        now = event.timestamp
        self.counters.events_processed += 1
        if now - self._last_expiry >= self._expiry_interval:
            self.expire(now)
        self._buffer_special_items(event)

        accepted_variables = self._accept_into_buffers(event, verdicts, row)
        if not accepted_variables:
            return []

        new_matches = self._extend_with_event(event, accepted_variables, now)
        if self._order[0] in accepted_variables:
            initiator = PartialMatch({self._order[0]: event})
            self.counters.partial_matches_created += 1
            new_matches.append(initiator)

        completed = self._extend_from_buffers(new_matches, event, now)

        if self.profiler is not None:
            self.profiler.observe_population(self.partial_match_count())

        matches: List[Match] = []
        for partial in completed:
            match = self._finalize(partial, now)
            if match is not None:
                matches.append(match)
        return matches

    # ------------------------------------------------------------------
    # Matching steps
    # ------------------------------------------------------------------
    def _accept_into_buffers(self, event: Event, verdicts, row: int) -> List[str]:
        """Buffer the event under every positive variable it can serve.

        ``verdicts`` carries precomputed columnar acceptance bitmasks when
        the batch path is active; otherwise compiled local kernels (or the
        interpreted conditions) run per event.
        """
        accepted: List[str] = []
        compiled = self._compiled
        for variable in self._type_to_variables.get(event.type_name, ()):
            if verdicts is not None:
                held = verdicts[variable][row]
            elif compiled is not None:
                held = compiled.evaluate_local(variable, event, self.collector)
            else:
                held = local_conditions_hold(
                    self.pattern, variable, event, self.collector,
                    conditions=self._conditions,
                )
            if self.profiler is not None:
                self.profiler.record_edge(f"buffer[{variable}]", held)
            if held:
                self._buffers[variable].append(event)
                spec = self._index_specs.get(variable)
                if spec is not None:
                    self._buffer_index[variable].add(
                        event.get(spec.event_attribute), event
                    )
                accepted.append(variable)
        return accepted

    def _extend_with_event(
        self, event: Event, accepted_variables: List[str], now: float
    ) -> List[PartialMatch]:
        """Extend stored partial matches whose next step accepts this event."""
        extended: List[PartialMatch] = []
        for variable in accepted_variables:
            spec = self._index_specs.get(variable)
            if spec is None:
                candidates = self._waiting[variable]
            else:
                primary, fallback, pruned = self._waiting_index[variable].probe(
                    event.get(spec.event_attribute)
                )
                if primary is None:
                    candidates = self._waiting[variable]
                else:
                    candidates = list(primary)
                    candidates.extend(fallback)
                    self._record_pruned(spec, pruned, now)
            for partial in candidates:
                candidate = self._try_extend(partial, variable, event, now)
                if candidate is not None:
                    extended.append(candidate)
        return extended

    def _extend_from_buffers(
        self,
        new_matches: List[PartialMatch],
        current_event: Event,
        now: float,
        first_level_min_ts: float = float("-inf"),
    ) -> List[PartialMatch]:
        """Recursively extend fresh partial matches with buffered history.

        Every partial match created along the way is also registered as
        "waiting" so that future events can extend it; complete bindings are
        returned for finalisation.

        ``first_level_min_ts`` prunes buffered candidates at (or before)
        that timestamp on the *first* frontier level only.  Injected
        shared-prefix bindings use it: in a SEQ pattern every suffix event
        must be strictly later than the prefix-completing event, so the
        (usually exhaustive) scan over already-buffered suffix events can
        be skipped without consulting the full ordering check.
        """
        completed: List[PartialMatch] = []
        frontier = list(new_matches)
        level_min_ts = first_level_min_ts
        while frontier:
            next_frontier: List[PartialMatch] = []
            for partial in frontier:
                if partial.size == self._depth:
                    completed.append(partial)
                    continue
                next_variable = self._order[partial.size]
                self._waiting[next_variable].append(partial)
                spec = self._index_specs.get(next_variable)
                if spec is None:
                    buffered_candidates = self._buffers[next_variable]
                else:
                    self._index_waiting_partial(
                        self._waiting_index[next_variable], spec, partial
                    )
                    buffered_candidates = self._probe_buffered(
                        spec, next_variable, partial, now
                    )
                for buffered in buffered_candidates:
                    if buffered.timestamp <= level_min_ts:
                        continue
                    if buffered is current_event or partial.contains_event(buffered):
                        continue
                    candidate = self._try_extend(partial, next_variable, buffered, now)
                    if candidate is not None:
                        next_frontier.append(candidate)
            frontier = next_frontier
            level_min_ts = float("-inf")
        return completed

    def _probe_buffered(
        self, spec, variable: str, partial: PartialMatch, now: float
    ) -> List[Event]:
        """Buffered events of ``variable`` that can satisfy the indexed equality."""
        bound = partial.bindings[spec.bound_variable]
        if isinstance(bound, list):
            return self._buffers[variable]
        primary, fallback, pruned = self._buffer_index[variable].probe(
            bound.get(spec.bound_attribute)
        )
        if primary is None:
            return self._buffers[variable]
        candidates = list(primary)
        candidates.extend(fallback)
        self._record_pruned(spec, pruned, now)
        return candidates

    def _record_pruned(self, spec, pruned: int, now: float) -> None:
        if pruned <= 0:
            return
        self.counters.candidates_pruned += pruned
        if self.collector is not None:
            a, b = spec.pair
            self.collector.observe_condition_bulk(a, b, now, pruned, 0.0)

    def _try_extend(
        self, partial: PartialMatch, variable: str, event: Event, now: float
    ) -> Optional[PartialMatch]:
        """Attempt to bind ``event`` as ``variable`` in ``partial``."""
        self.counters.extension_attempts += 1
        candidate: Optional[PartialMatch] = None
        compiled = self._compiled
        if compiled is not None:
            # Partial bindings are always the plan-order prefix, so the
            # step kernels for this extension sit at index ``partial.size``.
            step = compiled.steps[partial.size]
            if (
                not partial.contains_event(event)
                and compiled.window_ok(
                    partial.min_timestamp, partial.max_timestamp, event.timestamp
                )
                and compiled.order_respected(step, partial.bindings, event)
                and compiled.evaluate_step(
                    step, partial.bindings, event, self.collector, now
                )
            ):
                self.counters.partial_matches_created += 1
                candidate = partial.extended(variable, event)
        elif (
            not partial.contains_event(event)
            and window_respected(partial.bindings, event, self.pattern.window)
            and sequence_order_respected(self.pattern, partial.bindings, variable, event)
            and evaluate_new_conditions(
                self.pattern, partial.bindings, variable, event, self.collector, now,
                conditions=self._conditions,
            )
        ):
            self.counters.partial_matches_created += 1
            candidate = partial.extended(variable, event)
        if self.profiler is not None:
            self.profiler.record_edge(f"extend[{variable}]", candidate is not None)
        return candidate

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LazyNFAEngine(order={'->'.join(self._order)}, "
            f"partial_matches={self.partial_match_count()})"
        )

"""Engine state snapshot & restore.

The streaming runtime (:mod:`repro.streaming`) periodically checkpoints a
running engine so a killed pipeline can resume without re-reading the
stream.  An engine snapshot must capture *everything* the detection loop
depends on: open partial matches, the draining engines of an in-flight plan
migration, the sliding-window statistics collector, the adaptation
controller's policy state (invariants, reference snapshots) and the work
counters — otherwise a resumed run would diverge from an uninterrupted one.

Rather than enumerating that state field by field (and silently corrupting
resumes whenever a component grows a new field), snapshots serialize the
engine object graph wholesale with :mod:`pickle`.  Every component shipped
with the library is picklable — the multiprocess shard executor already
relies on this — and the same caveat applies: user-supplied conditions must
be module-level classes or functions, not closures.

The blob is framed with a magic string and a format version so that a
checkpoint written by an incompatible library version fails loudly instead
of unpickling garbage state.
"""

from __future__ import annotations

import pickle
import pickletools

from repro.errors import CheckpointError

#: Frame prefix identifying an engine-state blob.
SNAPSHOT_MAGIC = b"repro-engine-state"

#: Bumped whenever the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1


def snapshot_engine(engine: object) -> bytes:
    """Serialize a runtime engine (and all of its mutable state) to bytes.

    Works for any of the engine facades — sequential, multi-pattern or the
    parallel sharded engine — because the whole object graph is captured.
    """
    if not callable(getattr(engine, "process", None)):
        raise CheckpointError(
            f"cannot snapshot {type(engine).__name__}: not an engine "
            "(no process() method)"
        )
    try:
        payload = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"engine state is not picklable (user-supplied conditions must "
            f"be module-level classes or functions, not closures): {exc}"
        ) from exc
    header = SNAPSHOT_MAGIC + bytes([SNAPSHOT_VERSION])
    return header + pickletools.optimize(payload)


def restore_engine(blob: bytes) -> object:
    """Rebuild an engine from a :func:`snapshot_engine` blob."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"engine snapshot must be bytes, got {type(blob).__name__}"
        )
    prefix_length = len(SNAPSHOT_MAGIC) + 1
    if len(blob) <= prefix_length or not blob.startswith(SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not an engine snapshot (bad magic); was this blob produced by "
            "snapshot_engine()?"
        )
    version = blob[len(SNAPSHOT_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"engine snapshot version {version} is not supported by this "
            f"library build (expected {SNAPSHOT_VERSION})"
        )
    try:
        engine = pickle.loads(bytes(blob[prefix_length:]))
    except Exception as exc:
        raise CheckpointError(f"corrupt engine snapshot: {exc}") from exc
    if not callable(getattr(engine, "process", None)):
        raise CheckpointError(
            f"snapshot decoded to {type(engine).__name__}, which is not an "
            "engine (no process() method)"
        )
    return engine

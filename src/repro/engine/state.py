"""Engine state snapshot & restore.

The streaming runtime (:mod:`repro.streaming`) periodically checkpoints a
running engine so a killed pipeline can resume without re-reading the
stream.  An engine snapshot must capture *everything* the detection loop
depends on: open partial matches, the draining engines of an in-flight plan
migration, the sliding-window statistics collector, the adaptation
controller's policy state (invariants, reference snapshots) and the work
counters — otherwise a resumed run would diverge from an uninterrupted one.

Rather than enumerating that state field by field (and silently corrupting
resumes whenever a component grows a new field), snapshots serialize the
engine object graph wholesale with :mod:`pickle`.  Every component shipped
with the library is picklable — the multiprocess shard executor already
relies on this — and the same caveat applies: user-supplied conditions must
be module-level classes or functions, not closures.

The blob is framed with a magic string and a format version so that a
checkpoint written by an incompatible library version fails loudly instead
of unpickling garbage state.
"""

from __future__ import annotations

import pickle
import pickletools
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CheckpointError

#: Frame prefix identifying an engine-state blob.
SNAPSHOT_MAGIC = b"repro-engine-state"

#: Bumped whenever the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1

#: Frame prefix identifying a multi-shard state blob (one engine blob per
#: worker replica plus coordinator metadata — see :func:`snapshot_shard_states`).
SHARD_SNAPSHOT_MAGIC = b"repro-shard-states"

#: Bumped whenever the shard-frame layout changes incompatibly.
SHARD_SNAPSHOT_VERSION = 1

#: Frame prefix identifying a multi-pattern state blob (one engine blob per
#: registered pattern plus the shared meta state — see
#: :func:`snapshot_multi_state`).
MULTI_SNAPSHOT_MAGIC = b"repro-multi-state"

#: Bumped whenever the multi-pattern frame layout changes incompatibly.
MULTI_SNAPSHOT_VERSION = 1

#: Frame prefix identifying an in-flight ordering-stage blob (the reorder
#: buffer plus staged events — see :func:`snapshot_ordering_state`).
ORDERING_SNAPSHOT_MAGIC = b"repro-ordering-state"

#: Bumped whenever the ordering-frame layout changes incompatibly.
ORDERING_SNAPSHOT_VERSION = 1

#: Frame prefix identifying an incremental (delta) state blob: the keyed
#: collections changed since the previous epoch plus the re-pickled
#: skeleton — see :func:`snapshot_delta_state` and :mod:`repro.streaming.delta`.
DELTA_SNAPSHOT_MAGIC = b"repro-delta-state"

#: Bumped whenever the delta-frame layout changes incompatibly.
DELTA_SNAPSHOT_VERSION = 1


def snapshot_engine(engine: object) -> bytes:
    """Serialize a runtime engine (and all of its mutable state) to bytes.

    Works for any of the engine facades — sequential, multi-pattern or the
    parallel sharded engine — because the whole object graph is captured.
    Engines exposing ``multi_state_frames()`` (the multi-pattern engine)
    are framed as per-pattern snapshots instead — see
    :func:`snapshot_multi_state` — so individual pattern states stay
    independently restorable.
    """
    if not callable(getattr(engine, "process", None)):
        raise CheckpointError(
            f"cannot snapshot {type(engine).__name__}: not an engine "
            "(no process() method)"
        )
    frames_hook = getattr(engine, "multi_state_frames", None)
    if callable(frames_hook):
        meta_blob, frames = frames_hook()
        return snapshot_multi_state(meta_blob, frames)
    try:
        payload = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"engine state is not picklable (user-supplied conditions must "
            f"be module-level classes or functions, not closures): {exc}"
        ) from exc
    header = SNAPSHOT_MAGIC + bytes([SNAPSHOT_VERSION])
    return header + pickletools.optimize(payload)


def restore_engine(blob: bytes) -> object:
    """Rebuild an engine from a :func:`snapshot_engine` blob."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"engine snapshot must be bytes, got {type(blob).__name__}"
        )
    if is_multi_snapshot(blob):
        # Multi-pattern frames restore through the multi-pattern engine,
        # which re-wires the shared-prefix groups and statistics hub.
        from repro.engine.multi_pattern import MultiPatternEngine

        return MultiPatternEngine.restore_state(bytes(blob))
    prefix_length = len(SNAPSHOT_MAGIC) + 1
    if len(blob) <= prefix_length or not blob.startswith(SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not an engine snapshot (bad magic); was this blob produced by "
            "snapshot_engine()?"
        )
    version = blob[len(SNAPSHOT_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"engine snapshot version {version} is not supported by this "
            f"library build (expected {SNAPSHOT_VERSION})"
        )
    try:
        engine = pickle.loads(bytes(blob[prefix_length:]))
    except Exception as exc:
        raise CheckpointError(f"corrupt engine snapshot: {exc}") from exc
    if not callable(getattr(engine, "process", None)):
        raise CheckpointError(
            f"snapshot decoded to {type(engine).__name__}, which is not an "
            "engine (no process() method)"
        )
    return engine


# ----------------------------------------------------------------------
# Multi-pattern framing (per-pattern state frames inside one snapshot)
# ----------------------------------------------------------------------
def is_multi_snapshot(blob: bytes) -> bool:
    """Whether ``blob`` is a :func:`snapshot_multi_state` frame."""
    return isinstance(blob, (bytes, bytearray)) and bytes(blob).startswith(
        MULTI_SNAPSHOT_MAGIC
    )


def snapshot_multi_state(meta_blob: bytes, frames: Dict[str, bytes]) -> bytes:
    """Frame per-pattern engine blobs plus shared meta state into one blob.

    ``frames`` maps each registered pattern's id to a
    :func:`snapshot_engine` frame of its adaptive engine, so a single
    pattern's state stays individually restorable with
    :func:`restore_engine`.  ``meta_blob`` is the multi-pattern engine's
    opaque shared state (pattern registry, shared-prefix groups with their
    prefix engines, the statistics hub).
    """
    if not isinstance(meta_blob, (bytes, bytearray)):
        raise CheckpointError(
            f"multi snapshot meta must be bytes, got {type(meta_blob).__name__}"
        )
    frames = {key: bytes(frame) for key, frame in frames.items()}
    for key, frame in frames.items():
        if not frame.startswith(SNAPSHOT_MAGIC):
            raise CheckpointError(
                f"pattern frame {key!r} is not a snapshot_engine() frame"
            )
    try:
        payload = pickle.dumps(
            (bytes(meta_blob), frames), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:  # pragma: no cover - frames are already bytes
        raise CheckpointError(f"multi snapshot is not picklable: {exc}") from exc
    header = MULTI_SNAPSHOT_MAGIC + bytes([MULTI_SNAPSHOT_VERSION])
    return header + payload


def restore_multi_state(blob: bytes) -> Tuple[bytes, Dict[str, bytes]]:
    """Unframe a :func:`snapshot_multi_state` blob → ``(meta_blob, frames)``."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"multi snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    prefix_length = len(MULTI_SNAPSHOT_MAGIC) + 1
    if len(blob) <= prefix_length or not blob.startswith(MULTI_SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not a multi-pattern snapshot (bad magic); was this blob produced "
            "by snapshot_multi_state()?"
        )
    version = blob[len(MULTI_SNAPSHOT_MAGIC)]
    if version != MULTI_SNAPSHOT_VERSION:
        raise CheckpointError(
            f"multi-pattern snapshot version {version} is not supported by "
            f"this library build (expected {MULTI_SNAPSHOT_VERSION})"
        )
    try:
        meta_blob, frames = pickle.loads(blob[prefix_length:])
    except Exception as exc:
        raise CheckpointError(f"corrupt multi-pattern snapshot: {exc}") from exc
    if not isinstance(meta_blob, bytes) or not isinstance(frames, dict):
        raise CheckpointError(
            "multi-pattern snapshot decoded to an unexpected layout"
        )
    return meta_blob, frames


# ----------------------------------------------------------------------
# Multi-shard framing (the multi-core streaming worker backends)
# ----------------------------------------------------------------------
def is_shard_snapshot(blob: bytes) -> bool:
    """Whether ``blob`` is a :func:`snapshot_shard_states` frame."""
    return isinstance(blob, (bytes, bytearray)) and bytes(blob).startswith(
        SHARD_SNAPSHOT_MAGIC
    )


def snapshot_shard_states(
    shard_blobs: Sequence[bytes], meta: Optional[Dict[str, Any]] = None
) -> bytes:
    """Frame per-shard engine blobs (plus coordinator metadata) into one blob.

    The multi-core streaming backends checkpoint one engine replica per
    worker; a consistent cut is the *set* of replica snapshots taken at a
    queue barrier, together with the coordinator state that routes events
    and deduplicates matches (partitioner, dedup filter, queue high-water
    marks).  Each entry of ``shard_blobs`` must itself be a
    :func:`snapshot_engine` frame, so a shard can be restored individually
    with :func:`restore_engine`.
    """
    blobs = [bytes(blob) for blob in shard_blobs]
    if not blobs:
        raise CheckpointError("a shard snapshot needs at least one shard blob")
    for index, blob in enumerate(blobs):
        if not blob.startswith(SNAPSHOT_MAGIC) and not blob.startswith(
            MULTI_SNAPSHOT_MAGIC
        ):
            raise CheckpointError(
                f"shard {index} blob is not a snapshot_engine() frame"
            )
    try:
        payload = pickle.dumps(
            (blobs, dict(meta or {})), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise CheckpointError(
            f"shard snapshot metadata is not picklable: {exc}"
        ) from exc
    header = SHARD_SNAPSHOT_MAGIC + bytes([SHARD_SNAPSHOT_VERSION])
    return header + payload


def restore_shard_states(blob: bytes) -> Tuple[List[bytes], Dict[str, Any]]:
    """Unframe a :func:`snapshot_shard_states` blob → ``(shard_blobs, meta)``."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"shard snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    prefix_length = len(SHARD_SNAPSHOT_MAGIC) + 1
    if len(blob) <= prefix_length or not blob.startswith(SHARD_SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not a shard snapshot (bad magic); was this blob produced by "
            "snapshot_shard_states()?"
        )
    version = blob[len(SHARD_SNAPSHOT_MAGIC)]
    if version != SHARD_SNAPSHOT_VERSION:
        raise CheckpointError(
            f"shard snapshot version {version} is not supported by this "
            f"library build (expected {SHARD_SNAPSHOT_VERSION})"
        )
    try:
        blobs, meta = pickle.loads(blob[prefix_length:])
    except Exception as exc:
        raise CheckpointError(f"corrupt shard snapshot: {exc}") from exc
    if not isinstance(blobs, list) or not isinstance(meta, dict):
        raise CheckpointError("shard snapshot decoded to an unexpected layout")
    return blobs, meta


# ----------------------------------------------------------------------
# Ordering-stage framing (event-time watermarks & the reorder buffer)
# ----------------------------------------------------------------------
def is_ordering_snapshot(blob: bytes) -> bool:
    """Whether ``blob`` is a :func:`snapshot_ordering_state` frame."""
    return isinstance(blob, (bytes, bytearray)) and bytes(blob).startswith(
        ORDERING_SNAPSHOT_MAGIC
    )


def snapshot_ordering_state(state: Dict[str, Any]) -> bytes:
    """Frame a pipeline's in-flight ordering state into one durable blob.

    A pipeline with an event-time ordering stage holds events *outside* the
    engine at a checkpoint cut: the reorder buffer's pending heap (admitted
    but not yet released by the watermark) and the staging buffer's released
    but not yet processed events.  Both must survive a kill, or the resumed
    run would either lose them (the source offset is past them) or replay
    them out of order — so they are framed here and carried inside the
    :class:`~repro.streaming.checkpoint.Checkpoint`.  ``state`` maps
    ``"ordering"`` to the :class:`~repro.streaming.ordering.ReorderBuffer`
    and ``"staged"`` to the staged event list.
    """
    if "ordering" not in state:
        raise CheckpointError("ordering snapshot requires an 'ordering' entry")
    try:
        payload = pickle.dumps(dict(state), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"ordering state is not picklable (watermark extractors and late "
            f"side-output sinks must be module-level callables or methods of "
            f"picklable objects, not closures over open files): {exc}"
        ) from exc
    header = ORDERING_SNAPSHOT_MAGIC + bytes([ORDERING_SNAPSHOT_VERSION])
    return header + pickletools.optimize(payload)


def restore_ordering_state(blob: bytes) -> Dict[str, Any]:
    """Unframe a :func:`snapshot_ordering_state` blob back into its state dict."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"ordering snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    prefix_length = len(ORDERING_SNAPSHOT_MAGIC) + 1
    if len(blob) <= prefix_length or not blob.startswith(ORDERING_SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not an ordering snapshot (bad magic); was this blob produced by "
            "snapshot_ordering_state()?"
        )
    version = blob[len(ORDERING_SNAPSHOT_MAGIC)]
    if version != ORDERING_SNAPSHOT_VERSION:
        raise CheckpointError(
            f"ordering snapshot version {version} is not supported by this "
            f"library build (expected {ORDERING_SNAPSHOT_VERSION})"
        )
    try:
        state = pickle.loads(blob[prefix_length:])
    except Exception as exc:
        raise CheckpointError(f"corrupt ordering snapshot: {exc}") from exc
    if not isinstance(state, dict) or "ordering" not in state:
        raise CheckpointError("ordering snapshot decoded to an unexpected layout")
    return state


# ----------------------------------------------------------------------
# Delta framing (incremental checkpoints — repro.streaming.delta)
# ----------------------------------------------------------------------
def is_delta_snapshot(blob: bytes) -> bool:
    """Whether ``blob`` is a :func:`snapshot_delta_state` frame."""
    return isinstance(blob, (bytes, bytearray)) and bytes(blob).startswith(
        DELTA_SNAPSHOT_MAGIC
    )


def snapshot_delta_state(payload: Dict[str, Any]) -> bytes:
    """Frame one incremental-checkpoint delta into a durable blob.

    ``payload`` is the per-epoch delta produced by
    :class:`repro.streaming.delta.DeltaTracker`: a ``streams`` map of
    per-stream skeleton blobs and keyed-collection diffs, the epoch lineage
    (``epoch`` / ``since_epoch``) and optional coordinator metadata.  The
    frame is ``magic + version + CRC32 + pickled payload``; the CRC covers
    the payload, so a torn append-only delta file fails loudly on restore
    (and the chain falls back to its longest intact prefix) instead of
    unpickling garbage state.
    """
    if not isinstance(payload, dict) or "streams" not in payload:
        raise CheckpointError("a delta frame requires a 'streams' entry")
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"delta payload is not picklable: {exc}") from exc
    header = DELTA_SNAPSHOT_MAGIC + bytes([DELTA_SNAPSHOT_VERSION])
    return header + struct.pack("<I", zlib.crc32(body)) + body


def restore_delta_state(blob: bytes) -> Dict[str, Any]:
    """Unframe (and CRC-check) a :func:`snapshot_delta_state` blob."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError(
            f"delta snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    prefix_length = len(DELTA_SNAPSHOT_MAGIC) + 1 + 4
    if len(blob) <= prefix_length or not blob.startswith(DELTA_SNAPSHOT_MAGIC):
        raise CheckpointError(
            "not a delta snapshot (bad magic); was this blob produced by "
            "snapshot_delta_state()?"
        )
    version = blob[len(DELTA_SNAPSHOT_MAGIC)]
    if version != DELTA_SNAPSHOT_VERSION:
        raise CheckpointError(
            f"delta snapshot version {version} is not supported by this "
            f"library build (expected {DELTA_SNAPSHOT_VERSION})"
        )
    crc_offset = len(DELTA_SNAPSHOT_MAGIC) + 1
    (expected_crc,) = struct.unpack_from("<I", blob, crc_offset)
    body = blob[prefix_length:]
    if zlib.crc32(body) != expected_crc:
        raise CheckpointError(
            "delta snapshot failed its CRC check (torn or corrupted frame)"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"corrupt delta snapshot: {exc}") from exc
    if not isinstance(payload, dict) or "streams" not in payload:
        raise CheckpointError("delta snapshot decoded to an unexpected layout")
    return payload

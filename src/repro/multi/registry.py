"""Pattern registry for multi-pattern serving.

A :class:`PatternSet` is the unit of deployment for shared one-pass
evaluation: a mutable, ordered collection of patterns with stable ids.
Ids survive ``add``/``remove`` churn (removing pattern 3 never renames
pattern 7), so sinks, decision logs and per-pattern metrics can attribute
matches across redeployments.

The registry is duck-compatible with
:class:`~repro.patterns.CompositePattern` (``name``, ``window``,
``subpatterns()``, ``event_types()``), so everything that already accepts
a composite — partitioner validation, sharded replica construction, the
streaming pipeline — accepts a pattern set unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PatternError
from repro.events import EventType
from repro.patterns import Pattern
from repro.patterns.operators import PatternOperator


class PatternSet:
    """An ordered registry of patterns with stable, unique ids.

    Parameters
    ----------
    patterns:
        Initial patterns; each is registered under its own name as id.
    name:
        Registry name used in reports (defaults to ``"patterns[N]"``).
    """

    def __init__(
        self,
        patterns: Iterable[Pattern] = (),
        name: Optional[str] = None,
    ):
        self._by_id: Dict[str, Pattern] = {}
        self._id_by_name: Dict[str, str] = {}
        self._explicit_name = name
        for pattern in patterns:
            self.add(pattern)

    # ------------------------------------------------------------------
    # Registry API
    # ------------------------------------------------------------------
    def add(self, pattern: Pattern, pattern_id: Optional[str] = None) -> str:
        """Register a pattern under a stable id (default: its name).

        Ids and pattern names must both be unique within the set: ids are
        the provenance tag on emitted matches, and names key the engines'
        dedup/state frames.
        """
        if not isinstance(pattern, Pattern):
            raise PatternError(
                f"PatternSet holds Pattern instances, got {type(pattern).__name__}"
            )
        resolved = pattern_id or pattern.name
        if resolved in self._by_id:
            raise PatternError(f"pattern id {resolved!r} is already registered")
        if pattern.name in self._id_by_name:
            raise PatternError(
                f"pattern name {pattern.name!r} is already registered "
                f"(as id {self._id_by_name[pattern.name]!r}); pattern names "
                "must be unique within a PatternSet"
            )
        self._by_id[resolved] = pattern
        self._id_by_name[pattern.name] = resolved
        return resolved

    def remove(self, pattern_id: str) -> Pattern:
        """Unregister and return the pattern with the given id."""
        try:
            pattern = self._by_id.pop(pattern_id)
        except KeyError:
            raise PatternError(f"no pattern registered under id {pattern_id!r}") from None
        del self._id_by_name[pattern.name]
        return pattern

    def get(self, pattern_id: str) -> Pattern:
        try:
            return self._by_id[pattern_id]
        except KeyError:
            raise PatternError(f"no pattern registered under id {pattern_id!r}") from None

    def id_for(self, pattern_name: str) -> Optional[str]:
        """The id a pattern name was registered under, or ``None``."""
        return self._id_by_name.get(pattern_name)

    def ids(self) -> Tuple[str, ...]:
        return tuple(self._by_id)

    def items(self) -> Tuple[Tuple[str, Pattern], ...]:
        """``(id, pattern)`` pairs in registration order."""
        return tuple(self._by_id.items())

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, pattern_id: object) -> bool:
        return pattern_id in self._by_id

    # ------------------------------------------------------------------
    # CompositePattern-compatible surface
    # ------------------------------------------------------------------
    @property
    def operator(self) -> PatternOperator:
        return PatternOperator.DISJUNCTION

    @property
    def name(self) -> str:
        return self._explicit_name or f"patterns[{len(self._by_id)}]"

    @property
    def window(self) -> float:
        if not self._by_id:
            return float("inf")
        return max(p.window for p in self._by_id.values())

    @property
    def size(self) -> int:
        return max((p.size for p in self._by_id.values()), default=0)

    def subpatterns(self) -> Tuple[Pattern, ...]:
        return tuple(self._by_id.values())

    def event_types(self) -> Tuple[EventType, ...]:
        types: List[EventType] = []
        seen = set()
        for pattern in self._by_id.values():
            for event_type in pattern.event_types:
                if event_type.name not in seen:
                    seen.add(event_type.name)
                    types.append(event_type)
        return tuple(types)

    def __repr__(self) -> str:
        return f"PatternSet({', '.join(self._by_id)})"


def as_pattern_set(patterns) -> PatternSet:
    """Coerce a :class:`PatternSet`, composite or pattern sequence to a set."""
    if isinstance(patterns, PatternSet):
        return patterns
    if hasattr(patterns, "subpatterns") and not isinstance(patterns, Pattern):
        return PatternSet(patterns.subpatterns(), name=patterns.name)
    if isinstance(patterns, Pattern):
        raise PatternError(
            "a single Pattern is not a pattern collection; wrap it in a list "
            "or a PatternSet"
        )
    return PatternSet(list(patterns))

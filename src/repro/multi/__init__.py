"""Shared one-pass multi-pattern serving.

This package holds the building blocks of the multi-pattern evaluator:

* :class:`PatternSet` — the deployment registry: stable pattern ids that
  survive add/remove churn and tag every emitted match's provenance;
* :class:`SharedStatisticsHub` / :class:`SharedStatisticsCollector` —
  one arrival counter per event type shared by all patterns;
* :class:`PrefixShareManager` / :class:`SharedPrefixGroup` /
  :class:`SuffixNFAEngine` — cost-model-scored common-prefix sharing:
  a shared prefix is materialised once and its partial matches are
  fanned out to each consuming pattern's suffix engine.

The evaluator itself, :class:`~repro.engine.MultiPatternEngine`, lives in
:mod:`repro.engine` and is re-exported here lazily (this package is
imported *by* the engine layer, so an eager re-import would cycle).
"""

from repro.multi.hub import SharedStatisticsCollector, SharedStatisticsHub
from repro.multi.registry import PatternSet, as_pattern_set
from repro.multi.sharing import (
    MIN_PREFIX_LENGTH,
    PrefixShareManager,
    SharedPrefixGroup,
    SuffixNFAEngine,
    prefix_signature,
    shareable_lengths,
    share_prefix_statistics,
)

__all__ = [
    "MIN_PREFIX_LENGTH",
    "MultiPatternEngine",
    "PatternSet",
    "PrefixShareManager",
    "SharedPrefixGroup",
    "SharedStatisticsCollector",
    "SharedStatisticsHub",
    "SuffixNFAEngine",
    "as_pattern_set",
    "prefix_signature",
    "shareable_lengths",
    "share_prefix_statistics",
]


def __getattr__(name):
    if name == "MultiPatternEngine":
        from repro.engine.multi_pattern import MultiPatternEngine

        return MultiPatternEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

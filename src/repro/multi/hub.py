"""Shared statistics for multi-pattern serving.

In an N-isolated-pipelines deployment every pattern's
:class:`~repro.statistics.StatisticsCollector` counts every arrival
itself, so one stream is measured N times.  The
:class:`SharedStatisticsHub` owns exactly one sliding-window rate
estimator per event type; the multi-pattern engine feeds each event into
the hub once, and every pattern's :class:`SharedStatisticsCollector`
reads the shared estimators.  The per-pattern collectors keep their own
selectivity estimators (conditions are pattern-local), except for pairs
evaluated on their behalf by a shared prefix group, which are re-pointed
at the group's estimators via
:meth:`~repro.statistics.StatisticsCollector.share_selectivity`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import StatisticsError
from repro.events import Event, EventType
from repro.patterns import Pattern
from repro.statistics import StatisticsCollector
from repro.statistics.sliding_window import SlidingWindowRateEstimator


class SharedStatisticsHub:
    """One rate estimator per event type, shared across patterns.

    Parameters mirror :class:`~repro.statistics.StatisticsCollector`; the
    hub's window must cover the longest statistics window any pattern
    would have used on its own.
    """

    def __init__(self, window: float, num_buckets: int = 32):
        if window <= 0:
            raise StatisticsError("statistics hub window must be positive")
        self.window = float(window)
        self.num_buckets = num_buckets
        self._rates: Dict[str, SlidingWindowRateEstimator] = {}
        self._last_time: float = float("-inf")

    @property
    def last_time(self) -> float:
        """Timestamp of the newest event observed (``-inf`` before any)."""
        return self._last_time

    @property
    def tracked_types(self):
        return tuple(self._rates)

    def rate_estimator(self, type_name: str) -> SlidingWindowRateEstimator:
        """The shared estimator for an event type (created on first use)."""
        estimator = self._rates.get(type_name)
        if estimator is None:
            estimator = self._rates[type_name] = SlidingWindowRateEstimator(
                self.window, self.num_buckets
            )
        return estimator

    def register(self, pattern: Pattern) -> None:
        """Ensure shared estimators exist for every type a pattern uses."""
        for event_type in pattern.event_types:
            self.rate_estimator(event_type.name)

    def observe(self, event: Event) -> None:
        """Count one arrival — called exactly once per event by the
        multi-pattern engine, regardless of how many patterns consume it."""
        estimator = self._rates.get(event.type_name)
        if estimator is not None:
            estimator.observe(event.timestamp)
        if event.timestamp > self._last_time:
            self._last_time = event.timestamp


class SharedStatisticsCollector(StatisticsCollector):
    """A per-pattern collector whose arrival rates come from the hub.

    ``register_event_type`` installs the hub's shared estimator instead of
    a private one, and ``observe_event`` only advances the local clock —
    the hub has already counted the arrival.  Selectivity estimation is
    unchanged (pattern-local), so the resulting snapshots are exactly what
    an isolated collector would produce, at 1/N the counting work.
    """

    def __init__(self, hub: SharedStatisticsHub, prior_selectivity: float = 0.5):
        super().__init__(
            window=hub.window,
            num_buckets=hub.num_buckets,
            prior_selectivity=prior_selectivity,
        )
        self._hub = hub

    @property
    def hub(self) -> SharedStatisticsHub:
        return self._hub

    def attach_hub(self, hub: SharedStatisticsHub) -> None:
        """Re-point every rate estimate at (a restored) hub's estimators.

        Per-pattern checkpoint frames pickle independent copies of the
        shared estimators; restore re-establishes the sharing by calling
        this with the canonical hub.  Idempotent.
        """
        self._hub = hub
        for name in list(self._rate_estimators):
            self._rate_estimators[name] = hub.rate_estimator(name)

    def register_event_type(self, event_type: EventType) -> None:
        self._rate_estimators[event_type.name] = self._hub.rate_estimator(
            event_type.name
        )

    def observe_event(self, event: Event) -> None:
        # The hub counted this arrival once for all patterns.
        self._advance(event.timestamp)

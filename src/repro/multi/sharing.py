"""Shared-prefix evaluation across pattern plans.

The paper's cost model scores a plan prefix by the number of partial
matches it keeps alive (:func:`repro.plans.cost.order_prefix_cost`).
When several patterns open with the *same* prefix — same operator,
window, ``(variable, event type)`` items and prefix-only conditions —
re-deriving those partial matches once per pattern is pure waste: the
multi-pattern evaluator materialises the prefix **once** in a
:class:`SharedPrefixGroup` and fans the completed prefix bindings out to
each consumer's :class:`SuffixNFAEngine`, which evaluates only the
remaining plan steps.

The :class:`PrefixShareManager` is the engine factory the multi-pattern
engine installs into every per-pattern :class:`AdaptiveCEPEngine`: each
pattern keeps re-planning independently, and every plan the adaptive
controller installs is routed through the manager, which either joins a
shared group (when the plan's leading steps coincide with a prefix at
least two registered patterns declare) or falls back to a standalone
engine.  Plan migration semantics are preserved exactly: a suffix engine
created at switch time ``t0`` only receives prefix bindings made
entirely of events at or after ``t0`` (its ``join_time``), the
complement of what the draining predecessor is allowed to emit — so the
shared path produces per-pattern match sets byte-identical to isolated
pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conditions import ConditionSet
from repro.engine.match import Match, PartialMatch
from repro.engine.nfa import LazyNFAEngine
from repro.events import Event
from repro.multi.hub import SharedStatisticsCollector, SharedStatisticsHub
from repro.patterns import Pattern
from repro.plans import OrderBasedPlan
from repro.plans.cost import order_plan_cost, sharing_score
from repro.statistics import StatisticsCollector
from repro.statistics.collector import pairs_for_pattern

#: Shortest prefix worth materialising: a one-event "prefix" is just a
#: buffer, so sharing starts at two bound variables.
MIN_PREFIX_LENGTH = 2

Signature = Tuple


def prefix_signature(pattern: Pattern, length: int) -> Signature:
    """Structural identity of a pattern's declared prefix of ``length`` items.

    Two patterns share a prefix iff their first ``length`` positive items
    agree on variables and event types, their operators and windows agree,
    and the conditions closed over the prefix variables have identical
    :meth:`~repro.conditions.Condition.cache_key` sets.  Opaque conditions
    carry per-instance keys, so only provably identical prefixes merge.
    """
    items = pattern.positive_items[:length]
    prefix_variables = tuple(item.variable for item in items)
    condition_keys = tuple(
        sorted(
            repr(condition.cache_key())
            for condition in pattern.conditions.conditions_over(prefix_variables)
        )
    )
    return (
        pattern.operator.value,
        float(pattern.window),
        tuple((item.variable, item.event_type.name) for item in items),
        condition_keys,
    )


def shareable_lengths(pattern: Pattern) -> Sequence[int]:
    """Prefix lengths a pattern could share, deepest first.

    Patterns with negated or Kleene items are excluded outright: their
    finalisation consults side buffers the prefix/suffix split would have
    to replicate, so they always run standalone.
    """
    if pattern.negated_items or pattern.kleene_items:
        return ()
    return range(pattern.size - 1, MIN_PREFIX_LENGTH - 1, -1)


class SuffixNFAEngine(LazyNFAEngine):
    """A lazy-NFA engine that receives its leading bindings from a group.

    The engine runs the *full* pattern plan, but the event types of the
    shared prefix are masked out of its dispatch table: it never opens or
    extends partial matches from prefix-type events itself.  Instead the
    owning :class:`SharedPrefixGroup` calls :meth:`inject_partials` with
    completed prefix bindings, which then extend through the remaining
    plan steps exactly as if this engine had derived them — window,
    ordering and condition checks (and compiled kernels, whose step
    indexes key off the binding count) are untouched.

    ``join_time`` gates deliveries for engines created by a mid-stream
    re-plan: only bindings made entirely of events at or after it are
    accepted, mirroring the "all-new matches" contract of
    :class:`~repro.engine.PlanMigrationManager`.
    """

    def __init__(
        self,
        plan: OrderBasedPlan,
        collector: Optional[StatisticsCollector] = None,
        group_signature: Signature = (),
        prefix_variables: Sequence[str] = (),
        prefix_types: Sequence[str] = (),
        join_time: float = float("-inf"),
        profiler=None,
        compile_mode: str = "interpreted",
    ):
        super().__init__(plan, collector, profiler=profiler, compile_mode=compile_mode)
        self.group_signature = group_signature
        self.prefix_variables = tuple(prefix_variables)
        self.prefix_types = frozenset(prefix_types)
        self.join_time = join_time
        for type_name in self.prefix_types:
            self._type_to_variables.pop(type_name, None)

    def inject_partials(
        self, partials: List[PartialMatch], event: Event, now: float
    ) -> List[Match]:
        """Extend delivered prefix bindings through the suffix steps.

        ``event`` is the prefix-completing event (a prefix-type event, so
        it can never collide with this engine's buffered suffix events).
        """
        if now - self._last_expiry >= self._expiry_interval:
            self.expire(now)
        self.counters.partial_matches_created += len(partials)
        # Every delivered binding contains the prefix-completing event (at
        # timestamp ``now``), so in a SEQ pattern a suffix event can only
        # attach if it is strictly later — skip the scan over the already-
        # buffered (hence not-later) suffix events.  Conjunctions impose no
        # ordering and keep the full scan.
        min_ts = now if self.pattern.is_sequence() else float("-inf")
        completed = self._extend_from_buffers(
            list(partials), event, now, first_level_min_ts=min_ts
        )
        matches: List[Match] = []
        for partial in completed:
            match = self._finalize(partial, now)
            if match is not None:
                matches.append(match)
        return matches

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SuffixNFAEngine(order={'->'.join(self._order)}, "
            f"prefix={'+'.join(self.prefix_variables)}, "
            f"partial_matches={self.partial_match_count()})"
        )


@dataclass
class MemberRecord:
    """One consumer of a shared prefix: a suffix engine and its pattern."""

    engine: SuffixNFAEngine
    pattern_name: str


class SharedPrefixGroup:
    """Materialises one shared prefix and fans completions out to members.

    The group owns a plain :class:`LazyNFAEngine` over a synthetic pattern
    made of the shared prefix items and the conditions closed over them.
    Each completed prefix match is re-wrapped as a
    :class:`~repro.engine.PartialMatch` and delivered to every live member
    whose ``join_time`` admits it; delivery counts are surfaced as
    ``prefix_hits``.

    Member records are deliberately *not* pickled: checkpoint frames hold
    each pattern's engines, and restore re-attaches them to their group by
    ``group_signature`` (see ``MultiPatternEngine._rewire_sharing``), so
    the same engine state is never serialized twice.
    """

    def __init__(
        self,
        signature: Signature,
        prefix_pattern: Pattern,
        hub: SharedStatisticsHub,
        compile_mode: str,
        manager: "PrefixShareManager",
    ):
        self.signature = signature
        self.prefix_pattern = prefix_pattern
        self.prefix_variables = tuple(
            item.variable for item in prefix_pattern.positive_items
        )
        self.prefix_types = frozenset(
            item.event_type.name for item in prefix_pattern.items
        )
        self.collector = SharedStatisticsCollector(hub)
        self.collector.register_pattern(prefix_pattern)
        plan = OrderBasedPlan.in_pattern_order(prefix_pattern)
        self.engine = LazyNFAEngine(plan, self.collector, compile_mode=compile_mode)
        self._manager = manager
        self._members: List[MemberRecord] = []
        self._pending: List[MemberRecord] = []
        self._last_event: Optional[Event] = None
        self._last_completions: List[PartialMatch] = []
        self.prefix_hits = 0
        self.completions = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_members"] = []
        state["_pending"] = []
        state["_last_event"] = None
        state["_last_completions"] = []
        return state

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def member_count(self) -> int:
        return len(self._members) + len(self._pending)

    def member_pattern_names(self) -> List[str]:
        return [r.pattern_name for r in self._members + self._pending]

    def add_member(self, engine: SuffixNFAEngine, pattern_name: str) -> None:
        """Register a consumer; joins mid-event are held in a pending list
        so the current event's completions can still be delivered to them
        (see :meth:`deliver_pending`)."""
        self._pending.append(MemberRecord(engine, pattern_name))

    def adopt_member(self, engine: SuffixNFAEngine, pattern_name: str) -> None:
        """Directly attach a restored engine (checkpoint rewiring path)."""
        self._members.append(MemberRecord(engine, pattern_name))

    def prune_members(self) -> None:
        """Drop members whose engine was replaced and fully retired by its
        pattern's plan migration.  Pending (joined-mid-event) members are
        never pruned here — they still owe a :meth:`deliver_pending`."""
        live_members = []
        for record in self._members:
            live = self._manager.live_engines(record.pattern_name)
            if live is not None and not any(e is record.engine for e in live):
                continue  # replaced and fully retired by its pattern's migration
            live_members.append(record)
        self._members = live_members

    def _prune_and_promote(self) -> None:
        self._members.extend(self._pending)
        self._pending.clear()
        self.prune_members()

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: Event) -> List[Match]:
        """Feed one prefix-type event; deliver completions to members."""
        self._prune_and_promote()
        raw = self.engine.process(event)
        completions = [PartialMatch(match.bindings) for match in raw]
        self._last_event = event
        self._last_completions = completions
        if not completions:
            return []
        self.completions += len(completions)
        matches: List[Match] = []
        for record in self._members:
            matches.extend(self._deliver(record, completions, event))
        return matches

    def deliver_pending(self, event: Event) -> List[Match]:
        """Deliver the current event's completions to members that joined
        while the event was being processed (a re-plan at this timestamp),
        then promote them.  Their ``join_time`` equals this event's
        timestamp, so only completions made entirely of events at this
        exact timestamp pass the gate — but those are precisely the ones
        the draining predecessor is forbidden to emit."""
        matches: List[Match] = []
        if self._last_event is event and self._last_completions:
            for record in self._pending:
                matches.extend(
                    self._deliver(record, self._last_completions, event)
                )
        self._members.extend(self._pending)
        self._pending.clear()
        return matches

    def _deliver(
        self, record: MemberRecord, completions: List[PartialMatch], event: Event
    ) -> List[Match]:
        join_time = record.engine.join_time
        partials = [
            pm
            for pm in completions
            if pm.min_timestamp is None or pm.min_timestamp >= join_time
        ]
        if not partials:
            return []
        self.prefix_hits += len(partials)
        return record.engine.inject_partials(partials, event, event.timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SharedPrefixGroup(prefix={'+'.join(sorted(self.prefix_types))}, "
            f"members={self.member_count}, hits={self.prefix_hits})"
        )


class PrefixShareManager:
    """Scores, creates and tracks shared prefixes; doubles as the engine
    factory installed into every per-pattern adaptive engine.

    A manager call — ``manager(plan, collector, profiler=..., compile_mode=...)``
    — picks the deepest declared prefix that (a) at least two registered
    patterns share structurally, (b) uses event types disjoint from the
    suffix steps, and (c) the cost model scores as a positive saving
    (:func:`~repro.plans.cost.sharing_score`; prefixes with no rate
    evidence yet share optimistically when the plan already leads with
    them).  When the installed plan does *not* evaluate the prefix first,
    the manager may still share by reordering the evaluation: it moves
    the prefix variables to the front (suffix steps keep their relative
    order) if the per-member sharing saving exceeds the cost-model
    penalty of deviating from the planner's order — the controller keeps
    tracking the planner's plan for policy purposes, the built engine
    evaluates the shared order.  Anything else falls back to
    :func:`~repro.engine.engine_for_plan` unchanged.
    """

    def __init__(self, hub: SharedStatisticsHub, compile_mode: str = "interpreted"):
        self._hub = hub
        self.compile_mode = compile_mode
        self._signature_counts: Dict[Signature, int] = {}
        self._groups: Dict[Signature, SharedPrefixGroup] = {}
        self._adaptives: Dict[str, object] = {}
        self._group_seq = 0
        self.last_scores: Dict[Signature, float] = {}
        #: Bumped on every engine build and membership change; the
        #: multi-pattern engine rebuilds its routing when it moves.
        self.version = 0

    def __getstate__(self):
        # Attached adaptive engines are the checkpoint frames' payload —
        # never serialize them through the manager; restore re-attaches
        # them (``MultiPatternEngine._rewire_sharing``).
        state = dict(self.__dict__)
        state["_adaptives"] = {}
        return state

    # ------------------------------------------------------------------
    # Registration / wiring
    # ------------------------------------------------------------------
    def register(self, pattern: Pattern) -> None:
        """Count a pattern's shareable prefixes (all eligible depths)."""
        for length in shareable_lengths(pattern):
            signature = prefix_signature(pattern, length)
            self._signature_counts[signature] = (
                self._signature_counts.get(signature, 0) + 1
            )

    def unregister(self, pattern: Pattern) -> None:
        for length in shareable_lengths(pattern):
            signature = prefix_signature(pattern, length)
            count = self._signature_counts.get(signature, 0) - 1
            if count > 0:
                self._signature_counts[signature] = count
            else:
                self._signature_counts.pop(signature, None)

    def attach(self, pattern_name: str, adaptive) -> None:
        """Associate a pattern's adaptive engine for liveness checks."""
        self._adaptives[pattern_name] = adaptive

    def live_engines(self, pattern_name: str) -> Optional[List]:
        """The pattern's live evaluation engines, or ``None`` if unknown."""
        adaptive = self._adaptives.get(pattern_name)
        if adaptive is None:
            return None
        return adaptive.evaluation_engines()

    def groups(self) -> List[SharedPrefixGroup]:
        return list(self._groups.values())

    def group_by_signature(self, signature: Signature) -> Optional[SharedPrefixGroup]:
        return self._groups.get(signature)

    # ------------------------------------------------------------------
    # Engine factory
    # ------------------------------------------------------------------
    def __call__(
        self,
        plan,
        collector: Optional[StatisticsCollector] = None,
        profiler=None,
        compile_mode: str = "interpreted",
    ):
        choice = self._choose(plan, collector)
        self.version += 1
        if choice is None:
            from repro.engine.cep_engine import engine_for_plan

            return engine_for_plan(
                plan, collector, profiler=profiler, compile_mode=compile_mode
            )
        signature, length, plan = choice
        group = self._groups.get(signature)
        if group is None:
            group = self._create_group(signature, plan.pattern, length)
        engine = SuffixNFAEngine(
            plan,
            collector,
            group_signature=signature,
            prefix_variables=group.prefix_variables,
            prefix_types=group.prefix_types,
            join_time=self._hub.last_time,
            profiler=profiler,
            compile_mode=compile_mode,
        )
        share_prefix_statistics(collector, group)
        group.add_member(engine, plan.pattern.name)
        return engine

    def _choose(
        self, plan, collector: Optional[StatisticsCollector]
    ) -> Optional[Tuple[Signature, int, OrderBasedPlan]]:
        """The sharing decision for one plan install.

        Returns ``(signature, length, effective_plan)`` — the plan the
        suffix engine should actually evaluate, which is ``plan`` itself
        when it already leads with the shared prefix, or a reordered
        variant when rate evidence says the sharing saving outweighs the
        reordering penalty — or ``None`` to build standalone.
        """
        if not isinstance(plan, OrderBasedPlan):
            return None
        pattern = plan.pattern
        snapshot = collector.snapshot() if collector is not None else None
        for length in shareable_lengths(pattern):
            signature = prefix_signature(pattern, length)
            if self._signature_counts.get(signature, 0) < 2:
                continue
            items = pattern.positive_items[:length]
            prefix_variables = {item.variable for item in items}
            prefix_types = {item.event_type.name for item in items}
            suffix_types = {
                item.event_type.name for item in pattern.positive_items[length:]
            }
            if prefix_types & suffix_types:
                continue
            leads = set(plan.order[:length]) == prefix_variables
            evidence = snapshot is not None and any(
                snapshot.rate_or_default(name, 0.0) > 0.0
                for name in prefix_types
            )
            if not leads and not evidence:
                # Without rate evidence, never override the planner's order.
                continue
            effective = plan
            if snapshot is not None:
                members = max(2, self._signature_counts[signature])
                prefix_order = (
                    tuple(plan.order[:length])
                    if leads
                    else tuple(item.variable for item in items)
                )
                score = sharing_score(snapshot, pattern, prefix_order, members)
                self.last_scores[signature] = score
                if evidence and score <= 0.0:
                    continue
                if not leads:
                    shared_order = prefix_order + tuple(
                        v for v in plan.order if v not in prefix_variables
                    )
                    penalty = order_plan_cost(
                        snapshot, pattern, shared_order
                    ) - order_plan_cost(snapshot, pattern, plan.order)
                    if penalty >= score / members:
                        continue
                    effective = OrderBasedPlan(pattern, shared_order)
            return signature, length, effective
        return None

    def wants_resharing(self, plan, active_engine, collector) -> bool:
        """Would building an engine for ``plan`` *now* deepen the sharing
        topology relative to ``active_engine``?

        Consulted by the adaptive engine at monitoring boundaries when the
        policy sees no reason to re-plan: rate evidence accumulated since
        the last build may have turned a standalone engine into a
        profitable group member (or revealed a deeper shareable prefix).
        Only upgrades are reported — an engine already shared at the
        deepest structurally eligible prefix answers ``False`` without
        consulting the cost model, so scores hovering near zero cannot
        make the topology oscillate every monitoring period.
        """
        if not isinstance(plan, OrderBasedPlan):
            return False
        current = getattr(active_engine, "group_signature", None)
        if current is not None and self._deepest_structural(plan.pattern) == current:
            return False
        choice = self._choose(plan, collector)
        if choice is None:
            return False
        return choice[0] != current

    def _deepest_structural(self, pattern: Pattern) -> Optional[Signature]:
        """Deepest prefix signature passing the structural gates (shared by
        at least two registered patterns, prefix/suffix types disjoint) —
        the cheap, snapshot-free upper bound on what :meth:`_choose` can
        pick."""
        for length in shareable_lengths(pattern):
            signature = prefix_signature(pattern, length)
            if self._signature_counts.get(signature, 0) < 2:
                continue
            items = pattern.positive_items[:length]
            prefix_types = {item.event_type.name for item in items}
            suffix_types = {
                item.event_type.name for item in pattern.positive_items[length:]
            }
            if prefix_types & suffix_types:
                continue
            return signature
        return None

    def _create_group(
        self, signature: Signature, pattern: Pattern, length: int
    ) -> SharedPrefixGroup:
        items = pattern.positive_items[:length]
        prefix_variables = [item.variable for item in items]
        conditions = ConditionSet.from_conditions(
            pattern.conditions.conditions_over(prefix_variables)
        )
        type_names = "+".join(item.event_type.name for item in items)
        self._group_seq += 1
        prefix_pattern = Pattern(
            pattern.operator,
            items,
            condition=conditions,
            window=pattern.window,
            name=f"shared-prefix({type_names})#{self._group_seq}",
        )
        group = SharedPrefixGroup(
            signature, prefix_pattern, self._hub, self.compile_mode, self
        )
        self._groups[signature] = group
        return group

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def prefix_hits_total(self) -> int:
        return sum(group.prefix_hits for group in self._groups.values())

    def sharing_report(self) -> List[dict]:
        """One row per shared-prefix group (introspection / bench)."""
        report = []
        for signature, group in self._groups.items():
            report.append(
                {
                    "prefix": group.prefix_pattern.name,
                    "types": sorted(group.prefix_types),
                    "members": group.member_pattern_names(),
                    "completions": group.completions,
                    "prefix_hits": group.prefix_hits,
                    "score": self.last_scores.get(signature, 0.0),
                }
            )
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PrefixShareManager(groups={len(self._groups)}, "
            f"signatures={len(self._signature_counts)})"
        )


def share_prefix_statistics(
    collector: Optional[StatisticsCollector], group: SharedPrefixGroup
) -> None:
    """Point a member collector's prefix-pair selectivities at the group's.

    The member's suffix engine never evaluates prefix-only conditions (the
    group does, once), so without sharing its estimates for those pairs
    would starve and mislead its re-planning.  Idempotent — used both at
    member creation and during checkpoint-restore rewiring.
    """
    if collector is None:
        return
    for a, b in pairs_for_pattern(group.prefix_pattern):
        shared = group.collector.selectivity_estimator(a, b)
        if shared is not None:
            collector.share_selectivity(a, b, shared)

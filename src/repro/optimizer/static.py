"""Trivial (statistics-agnostic) planners.

These planners follow the pattern's declared item order and never perform a
block-building comparison; they are used as the initial plan before any
statistics exist and as the non-adaptive "static plan" baseline in the
experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.optimizer.base import (
    PlanGenerator,
    default_block_label_for_position,
    default_block_label_for_subset,
)
from repro.optimizer.recorder import DecidingConditionSet, PlanGenerationResult
from repro.patterns import Pattern
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.statistics import StatisticsSnapshot


def _empty_snapshot(snapshot: Optional[StatisticsSnapshot]) -> StatisticsSnapshot:
    return snapshot if snapshot is not None else StatisticsSnapshot({})


class TrivialOrderPlanner(PlanGenerator):
    """Order-based plan following the pattern's declared order."""

    name = "trivial-order"

    def generate(
        self, pattern: Pattern, snapshot: Optional[StatisticsSnapshot] = None
    ) -> PlanGenerationResult:
        snapshot = _empty_snapshot(snapshot)
        plan = OrderBasedPlan.in_pattern_order(pattern)
        condition_sets = [
            DecidingConditionSet(
                default_block_label_for_position(
                    index, item.variable, item.event_type.name
                )
            )
            for index, item in enumerate(pattern.positive_items)
        ]
        return PlanGenerationResult(
            plan=plan,
            condition_sets=condition_sets,
            snapshot=snapshot,
            generator_name=self.name,
        )


class TrivialTreePlanner(PlanGenerator):
    """Left-deep tree plan following the pattern's declared order."""

    name = "trivial-tree"

    def generate(
        self, pattern: Pattern, snapshot: Optional[StatisticsSnapshot] = None
    ) -> PlanGenerationResult:
        snapshot = _empty_snapshot(snapshot)
        plan = TreeBasedPlan.left_deep(pattern)
        condition_sets = [
            DecidingConditionSet(default_block_label_for_subset(node.variables()))
            for node in plan.internal_nodes_bottom_up()
        ]
        return PlanGenerationResult(
            plan=plan,
            condition_sets=condition_sets,
            snapshot=snapshot,
            generator_name=self.name,
        )

"""Greedy order-based plan generation (Algorithm 2 in the paper).

The algorithm iteratively selects the event type that minimises the growth
factor of the number of partial matches:

* step 1 picks the item with the lowest ``rate * local_selectivity``;
* step ``i`` picks the remaining item minimising
  ``rate * local_selectivity * prod_{k < i} sel(p_k, candidate)``.

Instrumentation: each time the winning candidate of a step is compared
against a losing candidate, the (satisfied) comparison is a block-building
comparison for the block "place <winner> at position i", and is recorded as
a deciding condition ``expr(winner) < expr(loser)`` (Section 4.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.optimizer.base import (
    PlanGenerator,
    default_block_label_for_position,
    initial_snapshot_or_error,
)
from repro.optimizer.recorder import ComparisonRecorder, PlanGenerationResult
from repro.optimizer.terms import (
    LocalSelectivityTerm,
    ProductExpression,
    RateTerm,
    SelectivityTerm,
    StatExpression,
)
from repro.patterns import Pattern
from repro.plans import OrderBasedPlan
from repro.statistics import StatisticsSnapshot


class GreedyOrderPlanner(PlanGenerator):
    """Instrumented greedy order-based planner.

    Parameters
    ----------
    require_rates:
        When true (default), generation fails fast if the snapshot lacks an
        arrival rate for any participating event type.
    """

    name = "greedy-order"

    def __init__(self, require_rates: bool = True):
        self._require_rates_flag = require_rates

    def generate(
        self, pattern: Pattern, snapshot: Optional[StatisticsSnapshot]
    ) -> PlanGenerationResult:
        snapshot = initial_snapshot_or_error(snapshot)
        if self._require_rates_flag:
            self._require_rates(pattern, snapshot)

        recorder = ComparisonRecorder()
        variables = [item.variable for item in pattern.positive_items]
        coupled_pairs = {
            tuple(sorted(pair)) for pair in pattern.conditions.variable_pairs()
        }
        has_local = {
            variable: bool(pattern.conditions.single_variable_conditions(variable))
            for variable in variables
        }

        order: List[str] = []
        remaining = list(variables)

        for position in range(len(variables)):
            expressions = {
                candidate: self._candidate_expression(
                    pattern, candidate, order, coupled_pairs, has_local
                )
                for candidate in remaining
            }
            values = {
                candidate: expression.evaluate(snapshot)
                for candidate, expression in expressions.items()
            }
            # Deterministic tie-break by the candidate's index in the pattern,
            # so equal-cost candidates never depend on dict iteration order.
            winner = min(
                remaining,
                key=lambda candidate: (values[candidate], pattern.positive_index(candidate)),
            )
            winner_item = pattern.item_by_variable(winner)
            block_label = default_block_label_for_position(
                position, winner, winner_item.event_type.name
            )
            recorder.open_block(block_label)
            for candidate in remaining:
                if candidate == winner:
                    continue
                recorder.count_comparison()
                # Ties (equal values, broken by the deterministic index rule)
                # are recorded too: they carry zero slack, so the adaptation
                # layer re-examines the choice as soon as the statistics
                # actually differentiate the candidates.
                note = f"{winner} preferred over {candidate} at position {position + 1}"
                if values[winner] == values[candidate]:
                    note += " (tie at creation)"
                recorder.record(
                    block_label,
                    lhs=expressions[winner],
                    rhs=expressions[candidate],
                    note=note,
                )
            order.append(winner)
            remaining.remove(winner)

        plan = OrderBasedPlan(pattern, order)
        return PlanGenerationResult(
            plan=plan,
            condition_sets=recorder.condition_sets(),
            snapshot=snapshot,
            generator_name=self.name,
            comparisons_performed=recorder.comparisons_performed,
            metadata={"order": tuple(order)},
        )

    # ------------------------------------------------------------------
    # Expression construction
    # ------------------------------------------------------------------
    @staticmethod
    def _candidate_expression(
        pattern: Pattern,
        candidate: str,
        prefix: Sequence[str],
        coupled_pairs,
        has_local,
    ) -> StatExpression:
        """Selection expression of a candidate given the already-chosen prefix.

        ``rate(type) * sel(candidate) * prod_{k in prefix, coupled} sel(k, candidate)``.
        Pairs without a predicate contribute factor 1 and are omitted so the
        expression stays small (near-constant-time verification, Section 4.1).
        """
        item = pattern.item_by_variable(candidate)
        factors: List[StatExpression] = [RateTerm(item.event_type.name)]
        if has_local.get(candidate):
            factors.append(LocalSelectivityTerm(candidate))
        for previous in prefix:
            if tuple(sorted((previous, candidate))) in coupled_pairs:
                factors.append(SelectivityTerm(previous, candidate))
        if len(factors) == 1:
            return factors[0]
        return ProductExpression(factors)

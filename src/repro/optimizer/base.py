"""Abstract plan-generator interface."""

from __future__ import annotations

from typing import Optional

from repro.errors import OptimizerError
from repro.patterns import Pattern
from repro.optimizer.recorder import PlanGenerationResult
from repro.statistics import StatisticsSnapshot


class PlanGenerator:
    """Base class for (instrumented) plan-generation algorithms.

    A generator is deterministic: the same pattern and the same statistics
    snapshot always yield the same plan.  This determinism is what makes the
    invariant-based method sound (Theorem 1 in the paper relies on it).
    """

    #: Human-readable algorithm name used in results and reports.
    name: str = "plan-generator"

    def generate(
        self, pattern: Pattern, snapshot: StatisticsSnapshot
    ) -> PlanGenerationResult:
        """Produce an evaluation plan and its deciding-condition sets."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared validation helpers
    # ------------------------------------------------------------------
    def _require_rates(self, pattern: Pattern, snapshot: StatisticsSnapshot) -> None:
        """Ensure the snapshot has a rate for every positive item's type.

        Missing rates default to zero elsewhere in the cost model, which
        silently produces degenerate plans; failing fast here surfaces
        mis-wired experiments immediately.
        """
        missing = [
            item.event_type.name
            for item in pattern.positive_items
            if not snapshot.has_rate(item.event_type.name)
        ]
        if missing:
            raise OptimizerError(
                f"{self.name}: snapshot lacks arrival rates for types {sorted(set(missing))}"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def default_block_label_for_position(position: int, variable: str, type_name: str) -> str:
    """Canonical label of an order-plan building block."""
    return f"pos{position + 1}:{type_name}({variable})"


def default_block_label_for_subset(variables) -> str:
    """Canonical label of a tree-plan building block (an internal node)."""
    return "subset:" + "+".join(sorted(variables))


def initial_snapshot_or_error(snapshot: Optional[StatisticsSnapshot]) -> StatisticsSnapshot:
    """Planner entry guard for a possibly missing snapshot."""
    if snapshot is None:
        raise OptimizerError("a statistics snapshot is required for plan generation")
    return snapshot

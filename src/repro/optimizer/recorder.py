"""Deciding conditions, deciding-condition sets, and the comparison recorder.

While a plan-generation algorithm runs, every *block-building comparison*
(BBC) it performs is reported to a :class:`ComparisonRecorder`.  A BBC is a
comparison whose positive outcome caused a specific building block to be
part of the final plan; the recorder stores it as a
:class:`DecidingCondition` in the :class:`DecidingConditionSet` of that
block.  The :class:`PlanGenerationResult` bundles the produced plan with its
ordered deciding-condition sets so that the adaptation layer can derive
invariants without knowing anything about the algorithm's internals
(Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import OptimizerError
from repro.optimizer.terms import StatExpression
from repro.plans.base import EvaluationPlan
from repro.statistics import StatisticsSnapshot


@dataclass(frozen=True)
class DecidingCondition:
    """An inequality ``lhs < rhs`` over the monitored statistics.

    The condition held at plan-generation time (it was checked and
    satisfied by a BBC); the adaptation layer re-verifies it, possibly with
    a minimal distance ``d`` (Section 3.4): the condition counts as violated
    once ``(1 + d) * lhs >= rhs``.
    """

    lhs: StatExpression
    rhs: StatExpression
    block_label: str = ""
    note: str = ""

    def holds(self, snapshot: StatisticsSnapshot, distance: float = 0.0) -> bool:
        """Whether the (distance-relaxed) condition still holds.

        The minimal distance ``d`` (Section 3.4) is the smallest relative
        difference between the two sides required for the condition to count
        as violated: the condition is violated only once
        ``lhs > (1 + d) * rhs``, so small oscillations around equality do
        not trigger reoptimization.  ``d = 0`` is the basic method; exact
        ties (which the planners break deterministically, not statistically)
        are never treated as violations.
        """
        return self.lhs.evaluate(snapshot) <= (1.0 + distance) * self.rhs.evaluate(snapshot)

    def slack(self, snapshot: StatisticsSnapshot) -> float:
        """``rhs - lhs``: how far the condition is from being violated."""
        return self.rhs.evaluate(snapshot) - self.lhs.evaluate(snapshot)

    def relative_difference(self, snapshot: StatisticsSnapshot) -> float:
        """``|rhs - lhs| / min(lhs, rhs)`` — used by the davg heuristic (Section 3.4)."""
        lhs = self.lhs.evaluate(snapshot)
        rhs = self.rhs.evaluate(snapshot)
        denominator = min(abs(lhs), abs(rhs))
        if denominator == 0.0:
            return 0.0
        return abs(rhs - lhs) / denominator

    def describe(self) -> str:
        text = f"{self.lhs.describe()} < {self.rhs.describe()}"
        if self.note:
            text += f"  [{self.note}]"
        return text

    def __repr__(self) -> str:
        return f"DecidingCondition({self.describe()})"


@dataclass
class DecidingConditionSet:
    """All deciding conditions attributed to one building block."""

    block_label: str
    conditions: List[DecidingCondition] = field(default_factory=list)

    def add(self, condition: DecidingCondition) -> None:
        self.conditions.append(condition)

    def __len__(self) -> int:
        return len(self.conditions)

    def __iter__(self):
        return iter(self.conditions)

    def is_empty(self) -> bool:
        return not self.conditions

    def tightest(
        self, snapshot: StatisticsSnapshot, k: int = 1
    ) -> List[DecidingCondition]:
        """The ``k`` conditions closest to violation (smallest slack).

        This is the paper's tightest-condition selection strategy
        (Section 3.1 / 3.5); ``k`` implements the K-invariant method
        (Section 3.3).  ``k <= 0`` selects every condition.
        """
        if self.is_empty():
            return []
        ordered = sorted(self.conditions, key=lambda c: c.slack(snapshot))
        if k <= 0 or k >= len(ordered):
            return list(ordered)
        return ordered[:k]

    def __repr__(self) -> str:
        return f"DecidingConditionSet({self.block_label!r}, {len(self.conditions)} conditions)"


class ComparisonRecorder:
    """Collects block-building comparisons during one planner run.

    The planner calls :meth:`record` each time a deciding condition is
    verified and satisfied for a block.  Blocks are identified by label; the
    order in which block labels are first seen defines the verification
    order of the resulting invariants (plan order for order-based plans,
    bottom-up for tree-based plans), because planners construct blocks in
    exactly that order.
    """

    def __init__(self) -> None:
        self._sets: Dict[str, DecidingConditionSet] = {}
        self._order: List[str] = []
        self.comparisons_performed = 0

    def open_block(self, block_label: str) -> None:
        """Ensure a (possibly empty) deciding-condition set exists for a block."""
        if block_label not in self._sets:
            self._sets[block_label] = DecidingConditionSet(block_label)
            self._order.append(block_label)

    def record(
        self,
        block_label: str,
        lhs: StatExpression,
        rhs: StatExpression,
        note: str = "",
    ) -> None:
        """Record one satisfied deciding condition for a block."""
        self.open_block(block_label)
        self._sets[block_label].add(
            DecidingCondition(lhs=lhs, rhs=rhs, block_label=block_label, note=note)
        )

    def count_comparison(self) -> None:
        """Count one comparison performed by the planner (recorded or not)."""
        self.comparisons_performed += 1

    def condition_sets(self) -> List[DecidingConditionSet]:
        """Deciding-condition sets in block-construction order."""
        return [self._sets[label] for label in self._order]

    def drop_blocks_not_in(self, kept_labels: Sequence[str]) -> None:
        """Discard sets for blocks that did not make it into the final plan.

        Dynamic-programming planners consider many candidate blocks; only
        the ones present in the returned plan carry invariants.
        """
        kept = set(kept_labels)
        self._order = [label for label in self._order if label in kept]
        self._sets = {label: self._sets[label] for label in self._order}

    def reorder_blocks(self, ordered_labels: Sequence[str]) -> None:
        """Reorder the recorded blocks to match the plan's block order."""
        missing = [label for label in ordered_labels if label not in self._sets]
        if missing:
            raise OptimizerError(f"cannot reorder: unknown block labels {missing}")
        self._order = list(ordered_labels)


@dataclass
class PlanGenerationResult:
    """Output of an instrumented planner run."""

    plan: EvaluationPlan
    condition_sets: List[DecidingConditionSet]
    snapshot: StatisticsSnapshot
    generator_name: str
    comparisons_performed: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_blocks(self) -> int:
        return len(self.condition_sets)

    def total_conditions(self) -> int:
        return sum(len(s) for s in self.condition_sets)

    def describe(self) -> str:
        lines = [f"{self.generator_name}: {self.plan.describe()}"]
        for condition_set in self.condition_sets:
            lines.append(f"  block {condition_set.block_label}:")
            for condition in condition_set:
                lines.append(f"    {condition.describe()}")
        return "\n".join(lines)

"""ZStream dynamic-programming tree plan generation (Algorithm 3 in the paper).

The algorithm computes, for every contiguous span of the pattern's positive
items, the cheapest binary evaluation tree over that span, reusing the
memoized best subtrees of its sub-spans.  The cost recursion is

    Cost(T) = Cost(L) + Cost(R) + Card(L, R)
    Card(T) = Card(L) * Card(R) * SEL(L, R)

with leaf cardinality equal to the type's arrival rate (times any local
selectivity).

Instrumentation (Section 4.2): a comparison between the costs of two
candidate trees over the same span is a block-building comparison for the
root of the cheaper tree.  To keep invariant verification constant-time,
the cost and cardinality of *internal* subtrees are frozen as constants in
the recorded expressions (their own changes are caught by the invariants of
earlier, lower blocks, which are verified first), while leaf cardinalities
and the selectivity between the two children are re-read from the current
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OptimizerError
from repro.optimizer.base import (
    PlanGenerator,
    default_block_label_for_subset,
    initial_snapshot_or_error,
)
from repro.optimizer.recorder import ComparisonRecorder, PlanGenerationResult
from repro.optimizer.terms import (
    ConstantTerm,
    LocalSelectivityTerm,
    ProductExpression,
    RateTerm,
    SelectivityTerm,
    StatExpression,
    SumExpression,
)
from repro.patterns import Pattern
from repro.plans import TreeBasedPlan, TreeInternalNode, TreeLeaf, TreePlanNode
from repro.statistics import StatisticsSnapshot


@dataclass
class _SpanSolution:
    """Best tree found for one contiguous span of positive items."""

    node: TreePlanNode
    cost: float
    cardinality: float
    # Expressions used when this subtree participates in a *parent*'s
    # invariant: internal subtrees freeze to constants, leaves stay symbolic.
    cost_expression: StatExpression
    cardinality_expression: StatExpression


class ZStreamTreePlanner(PlanGenerator):
    """Instrumented ZStream dynamic-programming tree planner."""

    name = "zstream-tree"

    def __init__(self, require_rates: bool = True):
        self._require_rates_flag = require_rates

    def generate(
        self, pattern: Pattern, snapshot: Optional[StatisticsSnapshot]
    ) -> PlanGenerationResult:
        snapshot = initial_snapshot_or_error(snapshot)
        if self._require_rates_flag:
            self._require_rates(pattern, snapshot)

        variables = [item.variable for item in pattern.positive_items]
        n = len(variables)
        recorder = ComparisonRecorder()
        coupled_pairs = {
            tuple(sorted(pair)) for pair in pattern.conditions.variable_pairs()
        }
        has_local = {
            variable: bool(pattern.conditions.single_variable_conditions(variable))
            for variable in variables
        }

        # solutions[(start, length)] -> best solution for that span
        solutions: Dict[Tuple[int, int], _SpanSolution] = {}
        for start, variable in enumerate(variables):
            solutions[(start, 1)] = self._leaf_solution(
                pattern, snapshot, variable, has_local
            )

        for length in range(2, n + 1):
            for start in range(0, n - length + 1):
                solutions[(start, length)] = self._solve_span(
                    pattern,
                    snapshot,
                    variables,
                    solutions,
                    start,
                    length,
                    coupled_pairs,
                    recorder,
                )

        if n == 1:
            root: TreePlanNode = solutions[(0, 1)].node
        else:
            root = solutions[(0, n)].node
        plan = TreeBasedPlan(pattern, root)

        # Keep only the deciding-condition sets of blocks present in the final
        # plan, ordered bottom-up to match the verification order.  Blocks the
        # DP never had to compare (single-split spans) get an empty set.
        final_labels = [
            default_block_label_for_subset(node.variables())
            for node in plan.internal_nodes_bottom_up()
        ]
        by_label = {s.block_label: s for s in recorder.condition_sets()}
        from repro.optimizer.recorder import DecidingConditionSet

        ordered_sets = [
            by_label.get(label, DecidingConditionSet(label)) for label in final_labels
        ]

        return PlanGenerationResult(
            plan=plan,
            condition_sets=ordered_sets,
            snapshot=snapshot,
            generator_name=self.name,
            comparisons_performed=recorder.comparisons_performed,
            metadata={"num_spans": len(solutions)},
        )

    # ------------------------------------------------------------------
    # DP internals
    # ------------------------------------------------------------------
    def _leaf_solution(
        self,
        pattern: Pattern,
        snapshot: StatisticsSnapshot,
        variable: str,
        has_local: Dict[str, bool],
    ) -> _SpanSolution:
        item = pattern.item_by_variable(variable)
        factors: List[StatExpression] = [RateTerm(item.event_type.name)]
        if has_local.get(variable):
            factors.append(LocalSelectivityTerm(variable))
        expression: StatExpression = (
            factors[0] if len(factors) == 1 else ProductExpression(factors)
        )
        value = expression.evaluate(snapshot)
        return _SpanSolution(
            node=TreeLeaf(variable, item.event_type.name),
            cost=value,
            cardinality=value,
            cost_expression=expression,
            cardinality_expression=expression,
        )

    def _solve_span(
        self,
        pattern: Pattern,
        snapshot: StatisticsSnapshot,
        variables: List[str],
        solutions: Dict[Tuple[int, int], _SpanSolution],
        start: int,
        length: int,
        coupled_pairs,
        recorder: ComparisonRecorder,
    ) -> _SpanSolution:
        span_variables = variables[start : start + length]
        block_label = default_block_label_for_subset(span_variables)
        recorder.open_block(block_label)

        candidates: List[Tuple[_SpanSolution, StatExpression, float, float]] = []
        for split in range(1, length):
            left = solutions[(start, split)]
            right = solutions[(start + split, length - split)]
            selectivity_expr = self._selectivity_expression(
                left.node.variables(), right.node.variables(), coupled_pairs
            )
            selectivity_value = selectivity_expr.evaluate(snapshot) if selectivity_expr else 1.0
            cardinality = left.cardinality * right.cardinality * selectivity_value
            cost = left.cost + right.cost + cardinality

            cost_expression = self._candidate_cost_expression(
                left, right, selectivity_expr
            )
            candidate = _SpanSolution(
                node=TreeInternalNode(left.node, right.node),
                cost=cost,
                cardinality=cardinality,
                cost_expression=ConstantTerm(cost, label=f"cost[{block_label}]"),
                cardinality_expression=ConstantTerm(
                    cardinality, label=f"card[{block_label}]"
                ),
            )
            candidates.append((candidate, cost_expression, cost, cardinality))

        if not candidates:
            raise OptimizerError(f"span {span_variables!r} produced no candidate trees")

        # Pick the cheapest candidate; ties break towards the earliest split
        # so the algorithm stays deterministic.
        best_index = min(
            range(len(candidates)), key=lambda i: (candidates[i][2], i)
        )
        best, best_expression, best_cost, _best_card = candidates[best_index]

        for index, (_, expression, cost, _) in enumerate(candidates):
            if index == best_index:
                continue
            recorder.count_comparison()
            note = f"split choice for [{'+'.join(span_variables)}]"
            if best_cost == cost:
                note += " (tie at creation)"
            recorder.record(
                block_label,
                lhs=best_expression,
                rhs=expression,
                note=note,
            )
        return best

    @staticmethod
    def _selectivity_expression(
        left_variables: Tuple[str, ...],
        right_variables: Tuple[str, ...],
        coupled_pairs,
    ) -> Optional[StatExpression]:
        """Product of selectivities between the two children (None if no predicate)."""
        terms: List[StatExpression] = []
        for a in left_variables:
            for b in right_variables:
                if tuple(sorted((a, b))) in coupled_pairs:
                    terms.append(SelectivityTerm(a, b))
        if not terms:
            return None
        if len(terms) == 1:
            return terms[0]
        return ProductExpression(terms)

    @staticmethod
    def _candidate_cost_expression(
        left: _SpanSolution,
        right: _SpanSolution,
        selectivity_expr: Optional[StatExpression],
    ) -> StatExpression:
        """Cost expression of a candidate tree for invariant verification.

        ``cost(L) + cost(R) + card(L) * card(R) * SEL(L, R)`` where the
        sub-expressions of internal children are frozen constants and those
        of leaves are live rate terms.
        """
        cardinality_factors: List[StatExpression] = [
            left.cardinality_expression,
            right.cardinality_expression,
        ]
        if selectivity_expr is not None:
            cardinality_factors.append(selectivity_expr)
        cardinality = ProductExpression(cardinality_factors)
        return SumExpression(
            [left.cost_expression, right.cost_expression, cardinality]
        )

"""Plan-generation algorithms and their instrumentation.

The algorithms here implement the two planners the paper applies the
invariant-based method to, plus simple static baselines:

* :class:`GreedyOrderPlanner` — the greedy order-based algorithm
  (Algorithm 2 in the paper; the heuristic of Swami [47] adapted to CEP).
* :class:`ZStreamTreePlanner` — ZStream's dynamic-programming tree
  algorithm (Algorithm 3).
* :class:`TrivialOrderPlanner` / :class:`TrivialTreePlanner` — follow the
  pattern's declared order; used as the non-adaptive "static" baselines and
  as the initial plan before statistics exist.

Every planner is *instrumented*: while it runs it records every
block-building comparison (BBC) into per-block deciding-condition sets,
which the adaptation layer turns into invariants.
"""

from repro.optimizer.terms import (
    StatExpression,
    ConstantTerm,
    RateTerm,
    SelectivityTerm,
    LocalSelectivityTerm,
    ProductExpression,
    SumExpression,
)
from repro.optimizer.recorder import (
    DecidingCondition,
    DecidingConditionSet,
    PlanGenerationResult,
    ComparisonRecorder,
)
from repro.optimizer.base import PlanGenerator
from repro.optimizer.greedy import GreedyOrderPlanner
from repro.optimizer.zstream import ZStreamTreePlanner
from repro.optimizer.static import TrivialOrderPlanner, TrivialTreePlanner

__all__ = [
    "StatExpression",
    "ConstantTerm",
    "RateTerm",
    "SelectivityTerm",
    "LocalSelectivityTerm",
    "ProductExpression",
    "SumExpression",
    "DecidingCondition",
    "DecidingConditionSet",
    "PlanGenerationResult",
    "ComparisonRecorder",
    "PlanGenerator",
    "GreedyOrderPlanner",
    "ZStreamTreePlanner",
    "TrivialOrderPlanner",
    "TrivialTreePlanner",
]

"""Symbolic expressions over monitored statistics.

A deciding condition is an inequality ``f1(stat1) < f2(stat2)`` where the
two sides are functions of the monitored statistics.  To re-verify such a
condition cheaply against *future* statistics snapshots, the planners build
each side as a small :class:`StatExpression` tree whose leaves reference the
monitored quantities by name (arrival rate of a type, selectivity of a
variable pair) or freeze a constant (e.g. the memoized cost of a subtree in
the ZStream adaptation, per Section 4.2 of the paper).

Evaluation of an expression is a handful of dictionary lookups and
multiplications — the constant-time verification the method requires.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.statistics import StatisticsSnapshot


class StatExpression:
    """A real-valued function of a statistics snapshot."""

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering used in invariant reports."""
        raise NotImplementedError

    def __mul__(self, other: "StatExpression") -> "StatExpression":
        return ProductExpression((self, other))

    def __add__(self, other: "StatExpression") -> "StatExpression":
        return SumExpression((self, other))

    def __repr__(self) -> str:
        return self.describe()


class ConstantTerm(StatExpression):
    """A frozen constant (does not react to statistic changes)."""

    __slots__ = ("value", "label")

    def __init__(self, value: float, label: str = ""):
        self.value = float(value)
        self.label = label

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        return self.value

    def describe(self) -> str:
        if self.label:
            return f"{self.label}={self.value:.4g}"
        return f"{self.value:.4g}"


class RateTerm(StatExpression):
    """The arrival rate of an event type."""

    __slots__ = ("type_name",)

    def __init__(self, type_name: str):
        self.type_name = type_name

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        return snapshot.rate_or_default(self.type_name, 0.0)

    def describe(self) -> str:
        return f"rate({self.type_name})"


class SelectivityTerm(StatExpression):
    """The selectivity of the predicate between two pattern variables."""

    __slots__ = ("variable_a", "variable_b")

    def __init__(self, variable_a: str, variable_b: str):
        self.variable_a = variable_a
        self.variable_b = variable_b

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        return snapshot.selectivity(self.variable_a, self.variable_b)

    def describe(self) -> str:
        return f"sel({self.variable_a},{self.variable_b})"


class LocalSelectivityTerm(StatExpression):
    """The combined selectivity of conditions local to one variable."""

    __slots__ = ("variable",)

    def __init__(self, variable: str):
        self.variable = variable

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        return snapshot.local_selectivity(self.variable)

    def describe(self) -> str:
        return f"sel({self.variable})"


class ProductExpression(StatExpression):
    """Product of sub-expressions."""

    __slots__ = ("factors",)

    def __init__(self, factors: Sequence[StatExpression]):
        flattened = []
        for factor in factors:
            if isinstance(factor, ProductExpression):
                flattened.extend(factor.factors)
            else:
                flattened.append(factor)
        self.factors: Tuple[StatExpression, ...] = tuple(flattened)

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        value = 1.0
        for factor in self.factors:
            value *= factor.evaluate(snapshot)
        return value

    def describe(self) -> str:
        return " * ".join(factor.describe() for factor in self.factors)


class SumExpression(StatExpression):
    """Sum of sub-expressions."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[StatExpression]):
        flattened = []
        for term in terms:
            if isinstance(term, SumExpression):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        self.terms: Tuple[StatExpression, ...] = tuple(flattened)

    def evaluate(self, snapshot: StatisticsSnapshot) -> float:
        return sum(term.evaluate(snapshot) for term in self.terms)

    def describe(self) -> str:
        return " + ".join(term.describe() for term in self.terms)


def product_of(*factors: StatExpression) -> StatExpression:
    """Convenience constructor returning a single factor unchanged."""
    if len(factors) == 1:
        return factors[0]
    return ProductExpression(factors)

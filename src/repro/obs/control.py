"""The HTTP control plane of a running streaming pipeline.

A tiny operational surface served from a daemon thread next to the run
loop — stdlib :mod:`http.server` only, no framework — with the endpoints
a load balancer, an orchestrator, and an operator each need:

``GET /health``
    Liveness: 200 while the process is up and the control plane running.
``GET /ready``
    Readiness: 200 only when the pipeline is accepting and keeping up —
    503 while restoring from a checkpoint, before/after the run, and
    while the staging buffer is saturated under a backpressure policy.
    Liveness and readiness are deliberately distinct signals: a pipeline
    replaying a long delta chain is *alive* but must not be routed to.
``GET /metrics``
    Prometheus text exposition (``?format=json`` for JSON) rendered from
    the :class:`~repro.obs.registry.MetricsRegistry` at scrape time.
``GET /decisions``
    The decision log's in-memory tail; filter with ``?type=``,
    ``?limit=``, ``?since=``, ``?until=``.
``GET /engine``
    Engine introspection: the current plan, operator-level profile
    (condition timings, edge accept/reject counts, partial-match
    populations) and the cost-model drift table (see
    :mod:`repro.obs.introspect`).  Sections appear as the pipeline's
    engine provides them; profiling data requires an engine built with
    ``introspect=True``.
``GET /network``
    Data-plane counters of a networked pipeline: events accepted /
    rejected (backpressure) / duplicate / invalid at the ingestion
    endpoints, matches delivered / retried / dead-lettered by the acked
    sinks, and the delivery-latency aggregate.  404 when the pipeline has
    no network data plane attached.
``POST /checkpoint``
    Manual checkpoint cut: requests a cut through the pipeline's existing
    snapshot barrier (the run loop performs it between batches, exactly
    as a cadence-triggered cut would) and waits for it to land.

The module deliberately does not import :mod:`repro.streaming` — the
pipeline is duck-typed through the small surface above (``readiness()``,
``request_checkpoint()``), keeping ``repro.obs`` import-light and free of
cycles (``repro.streaming.pipeline`` imports ``repro.obs``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import StreamingError
from repro.obs.decisions import DecisionLog
from repro.obs.registry import MetricsRegistry

#: How long ``POST /checkpoint`` waits for the run loop to perform the cut
#: before answering 202 (accepted, still pending).
CHECKPOINT_WAIT_SECONDS = 10.0


class ControlPlane:
    """HTTP control plane thread for one streaming pipeline.

    Parameters
    ----------
    pipeline:
        The (duck-typed) pipeline: must offer ``readiness() -> (bool, str)``
        and ``request_checkpoint() -> threading.Event`` — both optional;
        a missing surface degrades the endpoint, it does not break the
        server (``/ready`` answers 503 "no pipeline", ``POST /checkpoint``
        answers 501).
    registry:
        Metrics source for ``/metrics``.
    decision_log:
        Record source for ``/decisions`` (optional).
    network:
        A live :class:`~repro.metrics.NetworkMetrics` (or anything with a
        ``snapshot() -> dict``) answering ``/network`` (optional).
    host / port:
        Bind address; ``port=0`` binds an ephemeral port (tests), exposed
        via :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        pipeline: Optional[Any] = None,
        registry: Optional[MetricsRegistry] = None,
        decision_log: Optional[DecisionLog] = None,
        network: Optional[Any] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.pipeline = pipeline
        self.registry = registry if registry is not None else MetricsRegistry()
        self.decision_log = decision_log
        self.network = network
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ControlPlane":
        if self._server is not None:
            raise StreamingError("control plane already started")
        plane = self

        class Handler(_ControlHandler):
            control = plane

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="control-plane",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ControlPlane":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Endpoint logic (transport-independent, unit-testable)
    # ------------------------------------------------------------------
    def handle_health(self) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"status": "ok"}
        state = getattr(self.pipeline, "state", None)
        if state is not None:
            body["pipeline"] = state
        if self.decision_log is not None:
            body["decision_seq"] = self.decision_log.last_seq
        return 200, body

    def handle_ready(self) -> Tuple[int, Dict[str, Any]]:
        readiness = getattr(self.pipeline, "readiness", None)
        if readiness is None:
            return 503, {"ready": False, "reason": "no pipeline attached"}
        ready, reason = readiness()
        return (200 if ready else 503), {"ready": bool(ready), "reason": reason}

    def handle_decisions(self, query: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        if self.decision_log is None:
            return 404, {"error": "no decision log configured"}
        try:
            records = self.decision_log.query(
                type=query.get("type"),
                since=float(query["since"]) if "since" in query else None,
                until=float(query["until"]) if "until" in query else None,
                limit=int(query["limit"]) if "limit" in query else None,
            )
        except (ValueError, TypeError) as exc:
            return 400, {"error": f"bad query parameter: {exc}"}
        return 200, {
            "count": len(records),
            "records": [record.as_dict() for record in records],
        }

    def handle_engine(self) -> Tuple[int, Dict[str, Any]]:
        introspection = getattr(self.pipeline, "engine_introspection", None)
        if introspection is None:
            # A bare engine attached in place of a pipeline still answers.
            introspection = getattr(self.pipeline, "introspection", None)
        if introspection is None:
            return 501, {"error": "pipeline does not expose engine introspection"}
        try:
            frame = introspection()
        except Exception as exc:  # engine mid-restore / workers mid-restart
            return 503, {"error": f"engine introspection unavailable: {exc}"}
        return 200, frame

    def handle_network(self) -> Tuple[int, Dict[str, Any]]:
        if self.network is None:
            return 404, {"error": "pipeline has no network data plane attached"}
        snapshot = getattr(self.network, "snapshot", None)
        body = snapshot() if callable(snapshot) else dict(self.network)
        return 200, body

    def handle_checkpoint(self) -> Tuple[int, Dict[str, Any]]:
        request = getattr(self.pipeline, "request_checkpoint", None)
        if request is None:
            return 501, {"error": "pipeline does not support manual checkpoints"}
        try:
            done = request()
        except StreamingError as exc:
            return 503, {"error": str(exc)}
        if done.wait(CHECKPOINT_WAIT_SECONDS):
            body: Dict[str, Any] = {"status": "ok", "reason": "manual"}
            metrics = getattr(self.pipeline, "metrics", None)
            if metrics is not None:
                body["checkpoints_written"] = metrics.checkpoints_written
                body["last_checkpoint_bytes"] = metrics.last_checkpoint_bytes
            return 200, body
        return 202, {"status": "pending", "reason": "manual"}


class _ControlHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ControlPlane`."""

    control: ControlPlane  # injected by ControlPlane.start()
    protocol_version = "HTTP/1.1"

    # Silence the default per-request stderr logging.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = (json.dumps(body, default=str) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _query(self) -> Dict[str, str]:
        parsed = parse_qs(urlparse(self.path).query)
        return {key: values[-1] for key, values in parsed.items() if values}

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = urlparse(self.path).path.rstrip("/") or "/"
        if route == "/health":
            self._send_json(*self.control.handle_health())
        elif route == "/ready":
            self._send_json(*self.control.handle_ready())
        elif route == "/metrics":
            body, content_type = self.control.registry.render(
                self._query().get("format", "prometheus")
            )
            self._send_text(200, body, content_type)
        elif route == "/decisions":
            self._send_json(*self.control.handle_decisions(self._query()))
        elif route == "/engine":
            self._send_json(*self.control.handle_engine())
        elif route == "/network":
            self._send_json(*self.control.handle_network())
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = urlparse(self.path).path.rstrip("/") or "/"
        # Drain any request body so keep-alive connections stay in sync.
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        if route == "/checkpoint":
            self._send_json(*self.control.handle_checkpoint())
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})

"""Batch-level tracing: following one fill/drain cycle across stages.

Aggregate stage timings answer *where time goes on average*; they cannot
answer *what happened to this batch* — whether a latency spike came from a
slow source pull, a reorder flush, a straggler shard worker, or a sink
stall.  The tracer records **spans**: one per stage traversal, tagged with
a trace ID that identifies the fill/drain cycle the batch belonged to, so
a single cycle can be reconstructed end to end
(``source → reorder → worker → merge → sink``).

Design constraints, in priority order:

1. **Zero cost when disabled.**  Tracing is off by default; the pipeline
   guards every call site with ``if tracer is not None``, so the hot path
   carries no tracing branches beyond a ``None`` check.
2. **Cheap when enabled.**  A span is a tuple append into a bounded deque
   under a lock — no allocation-heavy context managers on the per-event
   path; the pipeline records spans at *batch* granularity (one per stage
   per cycle), not per event.
3. **Reconciles with StageTiming.**  The pipeline feeds the tracer the
   *same* measured elapsed values it feeds the aggregate
   :class:`~repro.metrics.stage_metrics.StageTiming` objects, so per-stage
   span totals and the aggregate totals agree exactly
   (:meth:`Tracer.stage_totals` exists to assert this in tests).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

#: Default bound on retained spans (a span is ~100 bytes).
DEFAULT_MAX_SPANS = 4096


@dataclass
class Span:
    """One stage traversal of one traced batch."""

    trace_id: int
    stage: str
    seconds: float
    events: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "stage": self.stage,
            "seconds": self.seconds,
            "events": self.events,
        }
        if self.attrs:
            payload.update(self.attrs)
        return payload


class Tracer:
    """Bounded, thread-safe span recorder for the streaming pipeline.

    ``new_trace()`` mints the next trace ID (one per fill/drain cycle);
    ``record()`` appends a span against the current trace.  Old spans are
    discarded beyond ``max_spans`` — the tracer is a flight recorder, not
    an archive.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=int(max_spans))
        self._ids = itertools.count(1)
        self._current = 0

    def new_trace(self) -> int:
        """Start the next trace (fill/drain cycle); returns its ID."""
        with self._lock:
            self._current = next(self._ids)
            return self._current

    @property
    def current_trace(self) -> int:
        with self._lock:
            return self._current

    def record(
        self,
        stage: str,
        seconds: float,
        events: int = 0,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record one stage traversal against the current (or given) trace."""
        with self._lock:
            span = Span(
                trace_id=self._current if trace_id is None else trace_id,
                stage=stage,
                seconds=float(seconds),
                events=int(events),
                attrs=attrs,
            )
            self._spans.append(span)
            return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def spans(
        self, trace_id: Optional[int] = None, stage: Optional[str] = None
    ) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [span for span in spans if span.trace_id == trace_id]
        if stage is not None:
            spans = [span for span in spans if span.stage == stage]
        return spans

    def trace_ids(self) -> List[int]:
        """Distinct trace IDs with retained spans, in first-seen order."""
        seen: Dict[int, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def stage_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-stage ``{seconds, spans, events}`` totals over retained spans.

        When no spans have been evicted, the per-stage ``seconds`` here
        equals the corresponding :class:`StageTiming.total_seconds` for
        stages the pipeline traces — the reconciliation the tests assert.
        """
        totals: Dict[str, Dict[str, float]] = {}
        with self._lock:
            spans = list(self._spans)
        for span in spans:
            bucket = totals.setdefault(
                span.stage, {"seconds": 0.0, "spans": 0.0, "events": 0.0}
            )
            bucket["seconds"] += span.seconds
            bucket["spans"] += 1.0
            bucket["events"] += span.events
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self)} current_trace={self.current_trace}>"

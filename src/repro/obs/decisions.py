"""The decision log: a queryable audit trail of runtime actions.

Every consequential action a running pipeline takes — shedding events
under overload, dropping or side-routing late arrivals, cutting a
checkpoint, compacting a delta chain, replacing an evaluation plan — is
today observable only through aggregate counters.  The decision log turns
each of those actions into a **typed, timestamped record** (the ProvSQL
idea applied to runtime decisions instead of query results): an operator
can ask *which* events were shed and when, whether a checkpoint was cut by
cadence or by hand, and what statistics change triggered a re-plan.

Records are structured and append-only:

* a bounded **in-memory tail** (a deque) answers the control plane's
  ``/decisions`` queries without touching the disk;
* an optional **JSONL file** makes the trail durable — one JSON object per
  line, rotated to ``<path>.1`` when it outgrows ``max_bytes`` so a
  long-running service cannot fill the disk;
* every record carries a monotone **sequence number** that *continues
  across restarts* (the log re-reads the tail of an existing file on
  open), which is what lets the CI soak smoke assert that no record was
  lost or duplicated across a kill/resume cycle.

High-frequency decisions (shedding under sustained overload, late events
under heavy disorder) would flood a per-event log, so the pipeline routes
them through a :class:`CoalescingEmitter` that aggregates bursts into one
record carrying a count and the first/last timestamps — the hot path pays
one counter bump per event, not one file write.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.errors import StreamingError

#: The record types the runtime emits (the control plane's ``type=`` filter
#: accepts any string, so forward-compatible readers need no update).
DECISION_TYPES = (
    "shed",
    "late_event_policy",
    "checkpoint_cut",
    "compaction",
    "replan",
    "delivery_retry",
    "dead_letter",
)

#: In-memory tail length (records) when the caller does not override it.
DEFAULT_TAIL = 1024

#: Rotation threshold for the on-disk JSONL file.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024


@dataclass
class DecisionRecord:
    """One runtime decision: what was decided, when, and the particulars."""

    type: str
    time: float
    seq: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "type": self.type, "time": self.time, **self.detail}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DecisionRecord":
        detail = {
            key: value
            for key, value in payload.items()
            if key not in ("seq", "type", "time")
        }
        return cls(
            type=str(payload.get("type", "")),
            time=float(payload.get("time", 0.0)),
            seq=int(payload.get("seq", 0)),
            detail=detail,
        )


class DecisionLog:
    """Append-only, queryable log of runtime decisions.

    Parameters
    ----------
    path:
        JSONL file for the durable trail (``None`` keeps the log purely in
        memory).  An existing file is *continued*, not truncated: the
        sequence counter resumes after the last persisted record and the
        in-memory tail is pre-loaded from the file, so a resumed service
        presents one uninterrupted trail.
    tail:
        How many records the in-memory tail retains for queries.
    max_bytes:
        Rotate the file to ``<path>.1`` once it exceeds this size.
    clock:
        Wall-clock source stamped into each record (injectable for tests).

    Thread safety: ``record`` and ``query`` may be called concurrently from
    the pipeline thread and the control-plane HTTP threads.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        tail: int = DEFAULT_TAIL,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock: Callable[[], float] = time.time,
    ):
        if tail < 1:
            raise StreamingError(f"tail must be positive, got {tail!r}")
        if max_bytes < 1024:
            raise StreamingError(f"max_bytes must be >= 1024, got {max_bytes!r}")
        self.path = path
        self.max_bytes = int(max_bytes)
        self._clock = clock
        self._lock = threading.Lock()
        self._tail: Deque[DecisionRecord] = deque(maxlen=int(tail))
        self._seq = 0
        self._handle = None
        self._bytes_written = 0
        if path is not None:
            self._resume_from_file(path)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _resume_from_file(self, path: str) -> None:
        """Continue an existing trail: reload the tail, resume the seq."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            lines = []
        for line in lines[-self._tail.maxlen :]:
            if not line.strip():
                continue
            try:
                record = DecisionRecord.from_dict(json.loads(line))
            except (ValueError, TypeError):
                continue  # torn final line after a hard kill
            self._tail.append(record)
            if record.seq > self._seq:
                self._seq = record.seq
        # A record beyond the reloaded tail window may carry a higher seq;
        # scan the remainder cheaply for the true maximum.
        for line in lines[: -self._tail.maxlen or None]:
            try:
                seq = int(json.loads(line).get("seq", 0))
            except (ValueError, TypeError, AttributeError):
                continue
            if seq > self._seq:
                self._seq = seq
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._bytes_written = self._handle.tell()
        # A hard kill can tear the final line mid-write, leaving no trailing
        # newline; terminate it so the next record starts on its own line
        # instead of being concatenated into the torn garbage (which would
        # lose both records and break continuity).
        if self._bytes_written > 0:
            with open(path, "rb") as tail_check:
                tail_check.seek(-1, os.SEEK_END)
                if tail_check.read(1) != b"\n":
                    self._handle.write("\n")
                    self._handle.flush()
                    self._bytes_written += 1

    def _rotate_locked(self) -> None:
        assert self._handle is not None and self.path is not None
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes_written = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, type: str, **detail: Any) -> DecisionRecord:
        """Append one decision record; returns it (with its seq assigned)."""
        with self._lock:
            self._seq += 1
            record = DecisionRecord(
                type=type, time=self._clock(), seq=self._seq, detail=detail
            )
            self._tail.append(record)
            if self._handle is not None:
                line = json.dumps(record.as_dict(), default=str) + "\n"
                self._handle.write(line)
                self._handle.flush()
                self._bytes_written += len(line)
                if self._bytes_written > self.max_bytes:
                    self._rotate_locked()
            return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        type: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[DecisionRecord]:
        """Records from the in-memory tail, oldest first.

        ``type`` filters by record type, ``since``/``until`` bound the
        record wall-clock time (inclusive), ``limit`` keeps only the
        **newest** N of the filtered records.
        """
        with self._lock:
            records = list(self._tail)
        if type is not None:
            records = [record for record in records if record.type == type]
        if since is not None:
            records = [record for record in records if record.time >= since]
        if until is not None:
            records = [record for record in records if record.time <= until]
        if limit is not None and limit >= 0:
            records = records[-limit:] if limit else []
        return records

    def counts_by_type(self) -> Dict[str, int]:
        """How many tail records of each type (the serve summary table)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for record in self._tail:
                counts[record.type] = counts.get(record.type, 0) + 1
        return counts

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._tail)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:
        return (
            f"<DecisionLog path={self.path!r} tail={len(self)} "
            f"seq={self.last_seq}>"
        )


def read_decision_records(path: str) -> List[DecisionRecord]:
    """Parse a decision-log JSONL file (skipping a torn final line)."""
    records: List[DecisionRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle.read().splitlines():
            if not line.strip():
                continue
            try:
                records.append(DecisionRecord.from_dict(json.loads(line)))
            except (ValueError, TypeError):
                continue
    return records


def verify_continuity(records: Iterable[DecisionRecord]) -> List[str]:
    """Continuity violations in a record sequence (empty = continuous).

    The CI soak smoke's assertion: sequence numbers must be strictly
    increasing with no duplicates — a lost record shows up as a gap only
    when the writer is the single DecisionLog the seq discipline assumes,
    so the check reports both inversions and duplicates, and gaps.
    """
    problems: List[str] = []
    previous: Optional[int] = None
    for record in records:
        if previous is not None:
            if record.seq <= previous:
                problems.append(
                    f"seq {record.seq} after {previous}: duplicate or reordered record"
                )
            elif record.seq != previous + 1:
                problems.append(
                    f"gap between seq {previous} and {record.seq}: lost record(s)"
                )
        previous = record.seq
    return problems


class CoalescingEmitter:
    """Aggregate a burst of identical decisions into one record.

    Shedding and late-event decisions fire per *event*; logging each one
    would put a file write on the overload path (precisely when the
    pipeline can least afford it).  The emitter counts observations and
    flushes one aggregate record when ``flush_every`` accumulate or when
    ``flush_interval`` seconds pass between the first and the latest
    observation — whichever comes first.  The final partial burst is
    flushed by :meth:`flush` (the pipeline does this at end of run).
    """

    def __init__(
        self,
        log: DecisionLog,
        type: str,
        flush_every: int = 100,
        flush_interval: float = 1.0,
        clock: Callable[[], float] = time.time,
    ):
        if flush_every < 1:
            raise StreamingError(f"flush_every must be positive, got {flush_every!r}")
        self._log = log
        self._type = type
        self._flush_every = int(flush_every)
        self._flush_interval = float(flush_interval)
        self._clock = clock
        self._count = 0
        self._first_at: Optional[float] = None
        self._static: Dict[str, Any] = {}
        self._sample: Dict[str, Any] = {}

    @property
    def pending(self) -> int:
        return self._count

    def observe(self, sample: Optional[Dict[str, Any]] = None, **static: Any) -> None:
        """Account one decision; ``static`` fields must repeat per burst."""
        now = self._clock()
        if self._count == 0:
            self._first_at = now
        self._count += 1
        self._static.update(static)
        if sample:
            self._sample = dict(sample)
        if self._count >= self._flush_every or (
            self._first_at is not None
            and now - self._first_at >= self._flush_interval
        ):
            self.flush()

    def flush(self) -> Optional[DecisionRecord]:
        """Emit the pending aggregate record, if any."""
        if self._count == 0:
            return None
        detail: Dict[str, Any] = {
            "count": self._count,
            "first_at": self._first_at,
            **self._static,
        }
        if self._sample:
            detail["last"] = self._sample
        record = self._log.record(self._type, **detail)
        self._count = 0
        self._first_at = None
        self._sample = {}
        return record

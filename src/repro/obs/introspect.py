"""Engine introspection: operator-level profiling and cost-model drift.

PR 6 made the *service* observable; this module opens up the *engine*.
Two instruments, both opt-in and both zero-cost when disabled:

**Condition/operator profiling** (:class:`EngineProfiler`).  When an
evaluation engine is built with a profiler attached, every atomic conjunct
of the pattern's WHERE clause is replaced — at plan-build time, never on
the hot path — by a :class:`ProfiledCondition` wrapper that counts
evaluations, passes and cumulative wall time.  The engines additionally
report per-NFA-edge / per-tree-node accept/reject counts and sample the
live partial-match population (the very quantity the paper's cost model
minimises), so the profile names exactly the conditions worth compiling
and the operators holding the state.  With no profiler attached the
engines evaluate the original, unwrapped conditions: the disabled hot
path is the same object graph as before, not a branch around a wrapper.

**Cost-model drift monitoring** (:class:`DriftMonitor`).  At plan-install
time the monitor freezes the installed plan's *predicted* cost and the
per-pair *predicted* selectivities out of the planner's
:class:`~repro.optimizer.recorder.PlanGenerationResult` creation snapshot.
As the stream runs it compares them against the *observed* selectivities
the :class:`~repro.statistics.StatisticsCollector` accumulates from
``observe_condition`` feedback.  The per-pair ratio ``observed /
predicted`` is the drift signal: a ratio far from 1 means the statistics
that justified the current plan no longer describe the stream — the
quantitative "why" behind the invariant-based re-plan trigger, exported
as gauges and attached to every ``replan`` decision record.

Per-shard profile frames (parallel/worker execution) are plain dicts
(:meth:`EngineProfiler.frame`) merged by :func:`merge_profile_frames` /
:func:`merge_introspection_frames`; for worker processes the frames
travel inside the engine snapshots the existing barrier already ships.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.conditions.base import Condition
from repro.conditions.container import ConditionSet
from repro.statistics import StatisticsSnapshot
from repro.statistics.collector import pairs_for_pattern
from repro.statistics.snapshot import pair_key

__all__ = [
    "condition_key",
    "condition_label",
    "ConditionProfile",
    "ProfiledCondition",
    "EdgeProfile",
    "EngineProfiler",
    "DriftMonitor",
    "merge_profile_frames",
    "merge_introspection_frames",
    "engine_introspection_frame",
]


def condition_label(condition: Condition) -> str:
    """Stable human-readable identity of one atomic conjunct."""
    if isinstance(condition, ProfiledCondition):
        return condition.profile.label
    return repr(condition)


def condition_key(condition: Condition) -> str:
    """Stable *unique* identity of one atomic conjunct (profile dict key).

    Delegates to :meth:`~repro.conditions.Condition.cache_key`, so two
    distinct conditions whose reprs collide (e.g. two different lambdas
    named ``predicate``) keep separate profiles, while the compiled-kernel
    cache and the profiler agree on what "the same condition" means.
    """
    if isinstance(condition, ProfiledCondition):
        return condition.inner.cache_key()
    return condition.cache_key()


class ConditionProfile:
    """Evaluation counters for one atomic condition (picklable)."""

    __slots__ = ("label", "variables", "calls", "passes", "seconds")

    def __init__(self, label: str, variables: Sequence[str] = ()):
        self.label = label
        self.variables = tuple(sorted(variables))
        self.calls = 0
        self.passes = 0
        self.seconds = 0.0

    @property
    def pass_rate(self) -> float:
        """Observed fraction of evaluations that held (a selectivity proxy)."""
        if self.calls == 0:
            return 1.0
        return self.passes / self.calls

    def merge_from(self, other: "ConditionProfile") -> None:
        self.calls += other.calls
        self.passes += other.passes
        self.seconds += other.seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "variables": list(self.variables),
            "calls": self.calls,
            "passes": self.passes,
            "pass_rate": self.pass_rate,
            "seconds": self.seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ConditionProfile({self.label!r}, calls={self.calls}, "
            f"passes={self.passes}, seconds={self.seconds:.6f})"
        )


class ProfiledCondition(Condition):
    """A condition wrapper that times and counts every evaluation.

    Installed by :meth:`EngineProfiler.instrument_conditions` when an
    engine is built — the hot path evaluates the wrapper *instead of*
    branching on an "is profiling on?" flag, so a disabled engine never
    pays for the feature.  The wrapper is transparent to the planner and
    the statistics layer: it reports the inner condition's variables, and
    :meth:`flatten` keeps it atomic so :class:`ConditionSet` indexes it
    under the same variable key as the condition it wraps.
    """

    __slots__ = ("inner", "profile")

    def __init__(self, inner: Condition, profile: ConditionProfile):
        self.inner = inner
        self.profile = profile

    @property
    def variables(self):
        return self.inner.variables

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        profile = self.profile
        started = time.perf_counter()
        outcome = self.inner.evaluate(binding)
        profile.seconds += time.perf_counter() - started
        profile.calls += 1
        if outcome:
            profile.passes += 1
        return outcome

    def is_fully_bound(self, binding: Mapping[str, object]) -> bool:
        return self.inner.is_fully_bound(binding)

    def cache_key(self) -> str:
        return self.inner.cache_key()

    def flatten(self) -> Sequence[Condition]:
        return (self,)

    def __repr__(self) -> str:
        return f"profiled({self.inner!r})"


class EdgeProfile:
    """Accept/reject counters for one NFA edge or tree node (picklable)."""

    __slots__ = ("accepted", "rejected")

    def __init__(self):
        self.accepted = 0
        self.rejected = 0

    @property
    def attempts(self) -> int:
        return self.accepted + self.rejected

    @property
    def accept_rate(self) -> float:
        attempts = self.attempts
        if attempts == 0:
            return 1.0
        return self.accepted / attempts

    def merge_from(self, other: "EdgeProfile") -> None:
        self.accepted += other.accepted
        self.rejected += other.rejected

    def as_dict(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "accept_rate": self.accept_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EdgeProfile(accepted={self.accepted}, rejected={self.rejected})"


class EngineProfiler:
    """Cumulative operator-level instrumentation for one pattern's engines.

    One profiler is shared across every evaluation engine an adaptive
    engine builds (the initial plan and each re-plan), so the counters
    survive plan replacement and describe the pattern's whole lifetime.
    Condition profiles are keyed by the conjunct's ``cache_key()`` —
    stable across plan generations because reoptimization reorders the
    *plan*, never rewrites the WHERE clause, and unique even when two
    different conditions share a ``repr`` (the display label).  Compiled
    kernels (:mod:`repro.compile`) update the *same* profile objects, so
    a profile row aggregates interpreted and compiled evaluations alike.

    All state is plain ints/floats/dicts: profilers travel inside engine
    snapshots to worker processes and back without special handling.
    """

    def __init__(self):
        self.conditions: Dict[str, ConditionProfile] = {}
        self.edges: Dict[str, EdgeProfile] = {}
        self.partial_matches_high_water = 0
        self.plans_instrumented = 0

    # ------------------------------------------------------------------
    # Installation (plan-build time)
    # ------------------------------------------------------------------
    def profile_for(self, condition: Condition) -> ConditionProfile:
        key = condition_key(condition)
        profile = self.conditions.get(key)
        if profile is None:
            profile = self.conditions[key] = ConditionProfile(
                condition_label(condition), condition.variables
            )
        return profile

    def instrument_conditions(self, conditions: ConditionSet) -> ConditionSet:
        """A parallel :class:`ConditionSet` with every conjunct wrapped.

        The original set (and the pattern holding it) is left untouched —
        other engines, the planner and the invariant builder keep seeing
        the raw conditions.
        """
        return ConditionSet.from_conditions(
            ProfiledCondition(conjunct, self.profile_for(conjunct))
            for conjunct in conditions.conjuncts
        )

    # ------------------------------------------------------------------
    # Hot-path hooks (engines call these only when a profiler is attached)
    # ------------------------------------------------------------------
    def record_edge(self, label: str, accepted: bool) -> None:
        edge = self.edges.get(label)
        if edge is None:
            edge = self.edges[label] = EdgeProfile()
        if accepted:
            edge.accepted += 1
        else:
            edge.rejected += 1

    def observe_population(self, live: int) -> None:
        if live > self.partial_matches_high_water:
            self.partial_matches_high_water = live

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_conditions(self, k: int = 10) -> List[ConditionProfile]:
        """The ``k`` most expensive conditions by cumulative wall time."""
        ranked = sorted(
            self.conditions.values(), key=lambda p: p.seconds, reverse=True
        )
        return ranked[: max(0, int(k))]

    def total_condition_seconds(self) -> float:
        return sum(profile.seconds for profile in self.conditions.values())

    def frame(self) -> Dict[str, Any]:
        """A plain-dict snapshot (the per-shard merge unit)."""
        return {
            "conditions": {
                label: profile.as_dict()
                for label, profile in self.conditions.items()
            },
            "edges": {label: edge.as_dict() for label, edge in self.edges.items()},
            "partial_matches_high_water": self.partial_matches_high_water,
            "plans_instrumented": self.plans_instrumented,
        }


def merge_profile_frames(frames: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard :meth:`EngineProfiler.frame` dicts into one.

    Counters and times sum across shards; the partial-match high water is
    the maximum any one shard reached (each shard holds its own state).
    """
    conditions: Dict[str, Dict[str, Any]] = {}
    edges: Dict[str, Dict[str, Any]] = {}
    high_water = 0
    plans = 0
    for frame in frames:
        if not frame:
            continue
        for label, data in frame.get("conditions", {}).items():
            merged = conditions.get(label)
            if merged is None:
                conditions[label] = dict(data)
            else:
                merged["calls"] += data["calls"]
                merged["passes"] += data["passes"]
                merged["seconds"] += data["seconds"]
        for label, data in frame.get("edges", {}).items():
            merged = edges.get(label)
            if merged is None:
                edges[label] = dict(data)
            else:
                merged["accepted"] += data["accepted"]
                merged["rejected"] += data["rejected"]
        high_water = max(high_water, frame.get("partial_matches_high_water", 0))
        plans = max(plans, frame.get("plans_instrumented", 0))
    for data in conditions.values():
        data["pass_rate"] = (data["passes"] / data["calls"]) if data["calls"] else 1.0
    for data in edges.values():
        attempts = data["accepted"] + data["rejected"]
        data["accept_rate"] = (data["accepted"] / attempts) if attempts else 1.0
    return {
        "conditions": conditions,
        "edges": edges,
        "partial_matches_high_water": high_water,
        "plans_instrumented": plans,
    }


class DriftMonitor:
    """Tracks how far observed statistics drift from a plan's predictions.

    ``record_plan`` freezes the predictions at plan-install time;
    ``observe`` adopts each fresh statistics snapshot the adaptation loop
    already produces (no extra estimation work).  ``drift_ratios`` then
    reports ``observed / predicted`` per monitored selectivity pair — the
    plan was chosen *because* of those predictions, so a ratio far from 1
    quantifies how stale the plan's justification is.
    """

    def __init__(self):
        self.predicted_cost: Optional[float] = None
        self.predicted_selectivities: Dict[tuple, float] = {}
        self.plan_description: Optional[str] = None
        self.generator_name: Optional[str] = None
        self.installed_at: Optional[float] = None
        self.plans_recorded = 0
        self._observed: Optional[StatisticsSnapshot] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_plan(self, result, pattern) -> None:
        """Freeze the predictions of a newly installed plan.

        ``result`` is the planner's
        :class:`~repro.optimizer.recorder.PlanGenerationResult`; its
        ``snapshot`` is the statistics the plan was generated from, which
        makes ``plan.cost(snapshot)`` the *predicted* cost and
        ``snapshot.selectivity(pair)`` the *predicted* selectivities.
        """
        if result is None:
            return
        snapshot = result.snapshot
        self.predicted_cost = float(result.plan.cost(snapshot))
        self.predicted_selectivities = {
            pair_key(*pair): snapshot.selectivity(*pair)
            for pair in pairs_for_pattern(pattern)
        }
        self.plan_description = result.plan.describe()
        self.generator_name = result.generator_name
        self.installed_at = snapshot.timestamp
        self.plans_recorded += 1

    def observe(self, snapshot: StatisticsSnapshot) -> None:
        """Adopt the latest observed statistics (called per monitoring period)."""
        self._observed = snapshot

    @property
    def observed_snapshot(self) -> Optional[StatisticsSnapshot]:
        return self._observed

    # ------------------------------------------------------------------
    # Drift computation
    # ------------------------------------------------------------------
    @staticmethod
    def _ratio(predicted: float, observed: float) -> float:
        if predicted <= 0.0:
            return float("inf") if observed > 0.0 else 1.0
        return observed / predicted

    @staticmethod
    def drift_magnitude(ratio: float) -> float:
        """Symmetric drift size: ``max(ratio, 1/ratio)`` (1 = no drift)."""
        if ratio <= 0.0:
            return float("inf")
        return max(ratio, 1.0 / ratio)

    def drift_ratios(
        self, snapshot: Optional[StatisticsSnapshot] = None
    ) -> List[Dict[str, Any]]:
        """Per-pair drift rows, worst drift first.

        ``snapshot`` overrides the last observed snapshot (the controller
        passes the decision-time snapshot so a ``replan`` record carries
        exactly the drift that motivated it).
        """
        observed = snapshot if snapshot is not None else self._observed
        if observed is None or not self.predicted_selectivities:
            return []
        rows: List[Dict[str, Any]] = []
        for pair, predicted in sorted(self.predicted_selectivities.items()):
            observed_value = observed.selectivity(*pair)
            ratio = self._ratio(predicted, observed_value)
            rows.append(
                {
                    "pair": f"{pair[0]}~{pair[1]}",
                    "predicted": predicted,
                    "observed": observed_value,
                    "ratio": ratio,
                    "drift": self.drift_magnitude(ratio),
                }
            )
        rows.sort(key=lambda row: row["drift"], reverse=True)
        return rows

    def max_drift(self, snapshot: Optional[StatisticsSnapshot] = None) -> float:
        """The worst per-pair drift magnitude (1.0 = everything on model)."""
        rows = self.drift_ratios(snapshot)
        if not rows:
            return 1.0
        return rows[0]["drift"]

    def top_drifts(
        self, snapshot: Optional[StatisticsSnapshot] = None, k: int = 3
    ) -> List[Dict[str, Any]]:
        return self.drift_ratios(snapshot)[: max(0, int(k))]

    def summary(
        self, snapshot: Optional[StatisticsSnapshot] = None
    ) -> Dict[str, Any]:
        """The drift table the ``/engine`` endpoint and reports render."""
        return {
            "plan": self.plan_description,
            "generator": self.generator_name,
            "installed_at": self.installed_at,
            "plans_recorded": self.plans_recorded,
            "predicted_cost": self.predicted_cost,
            "max_drift": self.max_drift(snapshot),
            "pairs": self.drift_ratios(snapshot),
        }


# ----------------------------------------------------------------------
# Whole-engine frames (the /engine endpoint and the profile CLI)
# ----------------------------------------------------------------------
def engine_introspection_frame(engine) -> Dict[str, Any]:
    """Duck-typed introspection of any engine shape the pipeline hosts.

    * an engine exposing ``introspection()`` (adaptive / multi-pattern)
      answers for itself;
    * a sharded facade (``sharded_engine.shards``) yields one frame per
      shard replica, merged;
    * anything else degrades to its counters and partial-match count.
    """
    introspection = getattr(engine, "introspection", None)
    if callable(introspection):
        return introspection()
    sharded = getattr(engine, "sharded_engine", None)
    if sharded is not None:
        frames = [
            engine_introspection_frame(shard.engine) for shard in sharded.shards
        ]
        return merge_introspection_frames(frames)
    frame: Dict[str, Any] = {"engine": type(engine).__name__}
    counters = getattr(engine, "counters", None)
    if counters is not None:
        frame["counters"] = dict(vars(counters))
    count = getattr(engine, "partial_match_count", None)
    if callable(count):
        frame["partial_matches"] = {"live": count()}
    return frame


def _merge_numeric(target: Dict[str, Any], source: Mapping[str, Any]) -> None:
    for key, value in source.items():
        if isinstance(value, (int, float)):
            target[key] = target.get(key, 0) + value


def merge_introspection_frames(frames: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard introspection frames into one cross-shard view.

    Counters, per-state occupancies and profiles sum; high waters take the
    per-shard maximum; per-pair drift keeps the worst-drifting shard's row
    (replicas share predictions but observe their own slice of the
    stream, so the worst case is the actionable one).  ``shards`` records
    how many frames were folded.
    """
    frames = [frame for frame in frames if frame]
    if not frames:
        return {}
    if len(frames) == 1:
        merged = dict(frames[0])
        merged.setdefault("shards", 1)
        return merged
    merged: Dict[str, Any] = {key: frames[0].get(key) for key in ("pattern", "plan")}
    merged["shards"] = len(frames)
    counters: Dict[str, Any] = {}
    partial = {"live": 0, "high_water": 0}
    per_state: Dict[str, int] = {}
    profile_frames: List[Dict[str, Any]] = []
    drift_rows: Dict[str, Dict[str, Any]] = {}
    drift_meta: Dict[str, Any] = {}
    for frame in frames:
        _merge_numeric(counters, frame.get("counters", {}))
        matches = frame.get("partial_matches", {})
        partial["live"] += matches.get("live", 0)
        partial["high_water"] = max(
            partial["high_water"], matches.get("high_water", 0)
        )
        for state, occupancy in matches.get("per_state", {}).items():
            per_state[state] = per_state.get(state, 0) + occupancy
        if frame.get("profile"):
            profile_frames.append(frame["profile"])
        drift = frame.get("drift")
        if drift:
            for key in ("plan", "generator", "predicted_cost", "plans_recorded"):
                drift_meta.setdefault(key, drift.get(key))
            for row in drift.get("pairs", []):
                existing = drift_rows.get(row["pair"])
                if existing is None or row["drift"] > existing["drift"]:
                    drift_rows[row["pair"]] = row
    if counters:
        merged["counters"] = counters
    if per_state:
        partial["per_state"] = per_state
    merged["partial_matches"] = partial
    if profile_frames:
        merged["profile"] = merge_profile_frames(profile_frames)
    if drift_rows:
        rows = sorted(drift_rows.values(), key=lambda row: row["drift"], reverse=True)
        merged["drift"] = {
            **drift_meta,
            "max_drift": rows[0]["drift"] if rows else 1.0,
            "pairs": rows,
        }
    return merged

"""Operational observability for the streaming service.

Everything an operator needs to see *into* a running pipeline instead of
waiting for the end-of-run report:

* **metrics export** (:mod:`~repro.obs.registry`) — a lock-safe
  :class:`MetricsRegistry` snapshotting the live
  :class:`~repro.metrics.stage_metrics.PipelineMetrics` (worker lanes,
  checkpoint-bytes gauges included) into Prometheus text exposition or
  JSON, sampled at scrape time with zero cost on the per-event hot path;
* **the decision log** (:mod:`~repro.obs.decisions`) — a typed,
  append-only JSONL audit trail of every runtime action (``shed``,
  ``late_event_policy``, ``checkpoint_cut``, ``compaction``, ``replan``)
  with a bounded in-memory tail, on-disk rotation, restart-continuous
  sequence numbers, and a query API;
* **tracing** (:mod:`~repro.obs.tracing`) — batch-level spans following
  one fill/drain cycle through source → reorder → worker → merge → sink,
  off by default, reconciling exactly with the aggregate ``StageTiming``;
* **the control plane** (:mod:`~repro.obs.control`) — a stdlib
  ``http.server`` thread serving ``/health``, ``/ready``, ``/metrics``,
  ``/decisions``, ``/engine`` and ``POST /checkpoint`` on the running
  pipeline;
* **engine introspection** (:mod:`~repro.obs.introspect`) — opt-in,
  zero-overhead-when-off operator-level instrumentation: per-condition
  evaluation counters and wall time, per-NFA-edge / per-tree-node
  accept/reject counts, partial-match population gauges, and a
  cost-model drift monitor comparing the installed plan's predicted
  selectivities against what the stream actually delivers.

CLI wiring: ``serve --control-port 8080 --decision-log decisions.jsonl``
(add ``--trace`` to enable span recording).  This package must stay free
of :mod:`repro.streaming` imports — the pipeline imports *us*.
"""

from repro.obs.control import CHECKPOINT_WAIT_SECONDS, ControlPlane
from repro.obs.decisions import (
    DECISION_TYPES,
    CoalescingEmitter,
    DecisionLog,
    DecisionRecord,
    read_decision_records,
    verify_continuity,
)
from repro.obs.introspect import (
    ConditionProfile,
    DriftMonitor,
    EdgeProfile,
    EngineProfiler,
    ProfiledCondition,
    engine_introspection_frame,
    merge_introspection_frames,
    merge_profile_frames,
)
from repro.obs.registry import (
    MetricsRegistry,
    Sample,
    engine_introspection_samples,
    network_samples,
    render_json,
    render_prometheus,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    # decision log
    "DecisionLog",
    "DecisionRecord",
    "CoalescingEmitter",
    "DECISION_TYPES",
    "read_decision_records",
    "verify_continuity",
    # metrics export
    "MetricsRegistry",
    "Sample",
    "render_prometheus",
    "render_json",
    "engine_introspection_samples",
    "network_samples",
    # engine introspection
    "EngineProfiler",
    "ProfiledCondition",
    "ConditionProfile",
    "EdgeProfile",
    "DriftMonitor",
    "engine_introspection_frame",
    "merge_introspection_frames",
    "merge_profile_frames",
    # tracing
    "Tracer",
    "Span",
    # control plane
    "ControlPlane",
    "CHECKPOINT_WAIT_SECONDS",
]

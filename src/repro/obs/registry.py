"""Metrics export: snapshotting live pipeline counters for scraping.

The pipeline's :class:`~repro.metrics.stage_metrics.PipelineMetrics` is a
plain mutable object updated from the run loop's hot path — exactly right
for cheap instrumentation, exactly wrong to hand to a concurrent HTTP
scraper.  The :class:`MetricsRegistry` bridges the two worlds:

* the pipeline **registers** its live metrics object once (no per-event
  cost — registration is a dict insert, and the hot path never touches the
  registry);
* a scrape takes a **snapshot**: under the registry lock it copies the
  current counter values into a flat ``{name: (value, labels)}`` sample
  set.  Counters are plain ints/floats, so a read mid-update is torn at
  worst between *metrics*, never within one — acceptable for monitoring
  and free for the hot path;
* the sample set renders as **Prometheus text exposition format** (the
  ``/metrics`` endpoint) or JSON (``/metrics?format=json``).

Naming follows the Prometheus conventions: every metric is prefixed
``repro_``, monotone counters end in ``_total``, timings are exported in
seconds as ``_seconds_sum`` / ``_seconds_count`` / ``_seconds_max``
triples (the streaming :class:`StageTiming` aggregate, labelled by
``stage``), and per-worker lanes carry a ``shard`` label.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.stage_metrics import PipelineMetrics, StageTiming

#: Metric-name prefix for everything this registry exports.
NAMESPACE = "repro"


@dataclass
class Sample:
    """One exported time series: a value plus its label set."""

    name: str
    value: float
    labels: Dict[str, str] = field(default_factory=dict)
    help: str = ""
    type: str = "gauge"

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (self.name, tuple(sorted(self.labels.items())))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Prometheus accepts integers and floats; render ints without the
    # trailing ``.0`` for byte-stable golden files.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(samples: List[Sample]) -> str:
    """Render samples as the Prometheus text exposition format (v0.0.4)."""
    by_name: Dict[str, List[Sample]] = {}
    order: List[str] = []
    for sample in samples:
        if sample.name not in by_name:
            by_name[sample.name] = []
            order.append(sample.name)
        by_name[sample.name].append(sample)
    lines: List[str] = []
    for name in order:
        group = by_name[name]
        head = group[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.type}")
        for sample in group:
            if sample.labels:
                label_text = ",".join(
                    f'{key}="{_escape_label_value(str(value))}"'
                    for key, value in sorted(sample.labels.items())
                )
                lines.append(f"{name}{{{label_text}}} {_format_value(sample.value)}")
            else:
                lines.append(f"{name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def render_json(samples: List[Sample]) -> str:
    """Render samples as a JSON object (``?format=json``)."""
    payload: List[Dict[str, Any]] = [
        {
            "name": sample.name,
            "value": sample.value,
            "labels": sample.labels,
            "type": sample.type,
        }
        for sample in samples
    ]
    return json.dumps({"metrics": payload}, indent=2, sort_keys=False) + "\n"


def engine_introspection_samples(
    frame: dict, instance: str = "pipeline"
) -> List[Sample]:
    """Convert an engine-introspection frame into metric series.

    ``frame`` is what :meth:`StreamingPipeline.engine_introspection` /
    :meth:`AdaptiveCEPEngine.introspection` returns; missing sections
    (introspection disabled, bare engines) simply yield fewer series.
    Non-finite drift values (no prediction yet) are skipped — Prometheus
    has no useful rendering for them.
    """
    base = {"pipeline": instance}
    samples: List[Sample] = []
    matches = frame.get("partial_matches") or {}
    if "live" in matches:
        samples.append(
            Sample(
                f"{NAMESPACE}_partial_matches_live",
                float(matches["live"]),
                dict(base),
                "Live partial matches across the engine's operator states.",
                "gauge",
            )
        )
    profile = frame.get("profile") or {}
    for label, data in sorted((profile.get("conditions") or {}).items()):
        labels = {**base, "condition": label}
        samples.append(
            Sample(
                f"{NAMESPACE}_condition_evaluations_total",
                float(data["calls"]),
                dict(labels),
                "Evaluations of one profiled pattern condition.",
                "counter",
            )
        )
        samples.append(
            Sample(
                f"{NAMESPACE}_condition_seconds_total",
                float(data["seconds"]),
                dict(labels),
                "Cumulative wall time spent evaluating one condition.",
                "counter",
            )
        )
    drift = frame.get("drift") or {}
    predicted_cost = drift.get("predicted_cost")
    if predicted_cost is not None and predicted_cost == predicted_cost:
        samples.append(
            Sample(
                f"{NAMESPACE}_plan_predicted_cost",
                float(predicted_cost),
                dict(base),
                "Cost-model prediction for the installed plan at install time.",
                "gauge",
            )
        )
    max_drift = drift.get("max_drift")
    if isinstance(max_drift, (int, float)) and max_drift == max_drift and max_drift != float("inf"):
        samples.append(
            Sample(
                f"{NAMESPACE}_cost_model_drift_max",
                float(max_drift),
                dict(base),
                "Worst predicted-vs-observed selectivity drift magnitude.",
                "gauge",
            )
        )
    for row in drift.get("pairs") or ():
        ratio = row.get("ratio")
        if not isinstance(ratio, (int, float)) or ratio != ratio or ratio == float("inf"):
            continue
        samples.append(
            Sample(
                f"{NAMESPACE}_cost_model_drift_ratio",
                float(ratio),
                {**base, "pair": row["pair"]},
                "Observed/predicted selectivity per monitored pair.",
                "gauge",
            )
        )
    return samples


def network_samples(metrics, instance: str = "pipeline") -> List[Sample]:
    """Convert a :class:`~repro.metrics.NetworkMetrics` into metric series.

    The ``repro_net_*`` family: ingestion counters (accepted / rejected
    under backpressure / duplicate / invalid), delivery counters
    (delivered, retries, dead letters) and the delivery-latency
    StageTiming triple.
    """
    base = {"pipeline": instance}
    counters = (
        (
            "events_accepted",
            metrics.events_accepted,
            "Events accepted by the network ingestion endpoints.",
        ),
        (
            "events_rejected",
            metrics.events_rejected,
            "Events rejected under ingestion backpressure (HTTP 429).",
        ),
        (
            "events_duplicate",
            metrics.events_duplicate,
            "Re-pushed events dropped as duplicates of an ingested sequence.",
        ),
        (
            "events_invalid",
            metrics.events_invalid,
            "Malformed event records refused by the ingestion endpoints.",
        ),
        (
            "matches_delivered",
            metrics.matches_delivered,
            "Matches acknowledged by a webhook/socket receiver.",
        ),
        (
            "delivery_retries",
            metrics.delivery_retries,
            "Match delivery attempts that failed and were retried.",
        ),
        (
            "dead_letters",
            metrics.dead_letters,
            "Matches spilled to the dead-letter file after retry exhaustion.",
        ),
    )
    samples = [
        Sample(f"{NAMESPACE}_net_{name}_total", float(value), dict(base), help_text, "counter")
        for name, value, help_text in counters
    ]
    samples.extend(
        _timing_samples(
            f"{NAMESPACE}_net_delivery_seconds",
            metrics.delivery,
            dict(base),
            "Receiver round-trip latency of acknowledged match deliveries.",
        )
    )
    return samples


def _timing_samples(
    name: str, timing: StageTiming, labels: Dict[str, str], help: str
) -> List[Sample]:
    """Export one StageTiming as a sum/count/max triple."""
    return [
        Sample(f"{name}_sum", timing.total_seconds, dict(labels), help, "counter"),
        Sample(f"{name}_count", float(timing.observations), dict(labels), help, "counter"),
        Sample(f"{name}_max", timing.max_seconds, dict(labels), help, "gauge"),
    ]


class MetricsRegistry:
    """Lock-safe snapshot/render layer over live pipeline metrics.

    The registry never mutates what it samples; ``collect`` reads the
    registered objects' current values and materialises an immutable
    sample list, so scrapes impose no cost on the event hot path beyond
    the reads themselves.

    ``register_gauge`` adds ad-hoc time series (a callable polled at
    scrape time) — the pipeline uses it for liveness gauges like buffer
    occupancy that live outside :class:`PipelineMetrics`.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._lock = threading.Lock()
        self._pipelines: Dict[str, PipelineMetrics] = {}
        self._gauges: Dict[str, Tuple[Callable[[], float], Dict[str, str], str]] = {}
        self._samplers: Dict[str, Callable[[], List[Sample]]] = {}
        self._clock = clock
        self._started_at = clock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_pipeline(self, metrics: PipelineMetrics, name: str = "pipeline") -> None:
        """Attach a live PipelineMetrics object under an instance name."""
        with self._lock:
            self._pipelines[name] = metrics

    def unregister_pipeline(self, name: str = "pipeline") -> None:
        with self._lock:
            self._pipelines.pop(name, None)

    def register_gauge(
        self,
        name: str,
        read: Callable[[], float],
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> None:
        """Attach a callable polled at scrape time as one gauge series."""
        with self._lock:
            self._gauges[name] = (read, dict(labels or {}), help)

    def register_sampler(
        self, name: str, sampler: Callable[[], List[Sample]]
    ) -> None:
        """Attach a callable producing a whole sample list per scrape.

        For sources whose series set varies with runtime state (e.g. one
        drift gauge per monitored selectivity pair) — a fixed
        :meth:`register_gauge` cannot express those.  A raising sampler is
        skipped, like a dead gauge.
        """
        with self._lock:
            self._samplers[name] = sampler

    def unregister_sampler(self, name: str) -> None:
        with self._lock:
            self._samplers.pop(name, None)

    def register_engine_introspection(
        self, introspection: Callable[[], dict], name: str = "pipeline"
    ) -> None:
        """Export an engine-introspection frame source as metric series.

        ``introspection`` is polled at scrape time — pass
        ``pipeline.engine_introspection`` or ``engine.introspection``.
        Emits the cost-model drift gauges, the live/high-water
        partial-match population and per-condition profiling counters (see
        :func:`engine_introspection_samples`).
        """
        self.register_sampler(
            f"engine:{name}",
            lambda: engine_introspection_samples(introspection(), name),
        )

    def register_network(self, metrics, name: str = "pipeline") -> None:
        """Export a live :class:`~repro.metrics.NetworkMetrics` object.

        Emits the ``repro_net_*`` ingestion/delivery counters and the
        delivery-latency triple (see :func:`network_samples`), sampled at
        scrape time like every other source.
        """
        self.register_sampler(
            f"network:{name}", lambda: network_samples(metrics, name)
        )

    # ------------------------------------------------------------------
    # Snapshot + render
    # ------------------------------------------------------------------
    def collect(self) -> List[Sample]:
        """Snapshot every registered source into a flat sample list."""
        with self._lock:
            pipelines = dict(self._pipelines)
            gauges = dict(self._gauges)
            samplers = dict(self._samplers)
        samples: List[Sample] = [
            Sample(
                f"{NAMESPACE}_uptime_seconds",
                self._clock() - self._started_at,
                {},
                "Seconds since the metrics registry was created.",
                "gauge",
            )
        ]
        for name, metrics in pipelines.items():
            samples.extend(self._pipeline_samples(name, metrics))
        for name, (read, labels, help_text) in gauges.items():
            try:
                value = float(read())
            except Exception:
                continue  # a dead gauge must not break the scrape
            samples.append(Sample(name, value, labels, help_text, "gauge"))
        for name, sampler in samplers.items():
            try:
                samples.extend(sampler())
            except Exception:
                continue  # a dead sampler must not break the scrape
        return samples

    def _pipeline_samples(self, instance: str, m: PipelineMetrics) -> List[Sample]:
        base = {"pipeline": instance}
        prefix = NAMESPACE
        samples: List[Sample] = [
            Sample(
                f"{prefix}_events_ingested_total",
                float(m.events_ingested),
                dict(base),
                "Events pulled from the source into the pipeline.",
                "counter",
            ),
            Sample(
                f"{prefix}_events_processed_total",
                float(m.events_processed),
                dict(base),
                "Events handed to the detection engine.",
                "counter",
            ),
            Sample(
                f"{prefix}_events_shed_total",
                float(m.events_shed),
                dict(base),
                "Events dropped by the overflow (load-shedding) policy.",
                "counter",
            ),
            Sample(
                f"{prefix}_late_events_total",
                float(m.late_events),
                dict(base),
                "Events that arrived behind the watermark.",
                "counter",
            ),
            Sample(
                f"{prefix}_matches_emitted_total",
                float(m.matches_emitted),
                dict(base),
                "Pattern matches emitted to the sinks.",
                "counter",
            ),
            Sample(
                f"{prefix}_checkpoints_written_total",
                float(m.checkpoints_written),
                dict(base),
                "Checkpoints persisted (full and delta).",
                "counter",
            ),
            Sample(
                f"{prefix}_checkpoint_bytes_written_total",
                float(m.checkpoint_bytes_written),
                dict(base),
                "Bytes persisted by checkpointing.",
                "counter",
            ),
            Sample(
                f"{prefix}_checkpoint_last_bytes",
                float(m.last_checkpoint_bytes),
                dict(base),
                "Size of the most recent checkpoint (or delta) file.",
                "gauge",
            ),
            Sample(
                f"{prefix}_queue_high_water",
                float(m.queue_high_water),
                dict(base),
                "High-water mark of the staging buffer between source and engine.",
                "gauge",
            ),
            Sample(
                f"{prefix}_reorder_depth_high_water",
                float(m.reorder_depth_high_water),
                dict(base),
                "High-water mark of the event-time reorder buffer.",
                "gauge",
            ),
            Sample(
                f"{prefix}_partial_matches_high_water",
                float(m.partial_matches_high_water),
                dict(base),
                "High-water mark of the engine's live partial-match population.",
                "gauge",
            ),
        ]
        stage_help = "Per-stage processing latency (StageTiming aggregate)."
        for stage_name, timing in (
            ("source", m.source),
            ("engine", m.engine),
            ("sink", m.sink),
            ("checkpoint", m.checkpoint),
        ):
            samples.extend(
                _timing_samples(
                    f"{prefix}_stage_seconds",
                    timing,
                    {**base, "stage": stage_name},
                    stage_help,
                )
            )
        samples.extend(
            _timing_samples(
                f"{prefix}_watermark_lag",
                m.watermark_lag,
                dict(base),
                "Event-time lag of arrivals behind the stream high-water mark.",
            )
        )
        for shard_id in sorted(m.workers):
            lane = m.workers[shard_id]
            lane_labels = {**base, "shard": str(shard_id)}
            samples.extend(
                [
                    Sample(
                        f"{prefix}_worker_events_processed_total",
                        float(lane.events_processed),
                        dict(lane_labels),
                        "Events processed by one shard worker lane.",
                        "counter",
                    ),
                    Sample(
                        f"{prefix}_worker_batches_consumed_total",
                        float(lane.batches_consumed),
                        dict(lane_labels),
                        "Batches consumed by one shard worker lane.",
                        "counter",
                    ),
                    Sample(
                        f"{prefix}_worker_queue_high_water",
                        float(lane.queue_high_water),
                        dict(lane_labels),
                        "High-water mark of one shard worker's hand-off queue.",
                        "gauge",
                    ),
                ]
            )
            samples.extend(
                _timing_samples(
                    f"{prefix}_worker_batch_seconds",
                    lane.processing,
                    dict(lane_labels),
                    "Worker-side batch-processing latency.",
                )
            )
        return samples

    def render(self, format: str = "prometheus") -> Tuple[str, str]:
        """Render a fresh snapshot; returns ``(body, content_type)``."""
        samples = self.collect()
        if format == "json":
            return render_json(samples), "application/json"
        return (
            render_prometheus(samples),
            "text/plain; version=0.0.4; charset=utf-8",
        )

"""Statistics providers.

A *provider* is anything that can produce a
:class:`~repro.statistics.StatisticsSnapshot` for a given stream time.  The
detection–adaptation loop polls its provider once per monitoring period and
feeds the snapshot to the reoptimizing decision function.

Three providers are included:

* :class:`StaticStatisticsProvider` — returns a fixed snapshot (used for
  non-adaptive baselines and tests).
* :class:`GroundTruthStatisticsProvider` — queries time-varying value models
  (typically the ones driving a dataset simulator), so the decision layer
  sees the true generating statistics.  Experiments use this to isolate the
  behaviour of decision policies from estimator noise.
* :class:`NoisyStatisticsProvider` — wraps another provider and perturbs
  its values with multiplicative noise, modelling estimation error.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import StatisticsError
from repro.statistics.snapshot import PairKey, StatisticsSnapshot, pair_key
from repro.statistics.timevarying import TimeVaryingValue


class StatisticsProvider:
    """Interface: produce a statistics snapshot for a stream time."""

    def snapshot(self, now: float) -> StatisticsSnapshot:  # pragma: no cover - abstract
        raise NotImplementedError


class StaticStatisticsProvider(StatisticsProvider):
    """Always returns the same snapshot (with the requested timestamp)."""

    def __init__(self, snapshot: StatisticsSnapshot):
        self._snapshot = snapshot

    def snapshot(self, now: float) -> StatisticsSnapshot:
        return StatisticsSnapshot(
            self._snapshot.rates, self._snapshot.selectivities, timestamp=now
        )


class GroundTruthStatisticsProvider(StatisticsProvider):
    """Snapshot built from ground-truth time-varying value models.

    Parameters
    ----------
    rate_models:
        Mapping from event-type name to a :class:`TimeVaryingValue` giving
        the true arrival rate at any time.
    selectivity_models:
        Mapping from variable-pair key to the true selectivity model.
    """

    def __init__(
        self,
        rate_models: Mapping[str, TimeVaryingValue],
        selectivity_models: Optional[Mapping[PairKey, TimeVaryingValue]] = None,
    ):
        if not rate_models:
            raise StatisticsError("GroundTruthStatisticsProvider requires rate models")
        self._rate_models = dict(rate_models)
        self._selectivity_models: Dict[PairKey, TimeVaryingValue] = {
            pair_key(*key): model
            for key, model in (selectivity_models or {}).items()
        }

    def snapshot(self, now: float) -> StatisticsSnapshot:
        rates = {
            name: max(0.0, model.value_at(now))
            for name, model in self._rate_models.items()
        }
        selectivities = {
            key: min(1.0, max(0.0, model.value_at(now)))
            for key, model in self._selectivity_models.items()
        }
        return StatisticsSnapshot(rates, selectivities, timestamp=now)


class NoisyStatisticsProvider(StatisticsProvider):
    """Wrap a provider, adding multiplicative estimation noise.

    Each queried value ``v`` is returned as ``v * (1 + eps)`` with
    ``eps ~ Normal(0, noise)``, clipped so rates stay non-negative and
    selectivities stay in ``[0, 1]``.  The same stream time always yields
    the same noise (the RNG is keyed by the integer time step), so repeated
    queries within one monitoring period are consistent.
    """

    def __init__(
        self,
        inner: StatisticsProvider,
        noise: float = 0.05,
        seed: int = 0,
    ):
        if noise < 0:
            raise StatisticsError("noise level must be >= 0")
        self._inner = inner
        self._noise = float(noise)
        self._seed = int(seed)

    def snapshot(self, now: float) -> StatisticsSnapshot:
        base = self._inner.snapshot(now)
        if self._noise == 0.0:
            return base
        rng = np.random.default_rng(self._seed ^ (int(now * 1000) & 0x7FFFFFFF))
        rates = {
            name: max(0.0, value * (1.0 + rng.normal(0.0, self._noise)))
            for name, value in base.rates.items()
        }
        selectivities = {
            key: min(1.0, max(0.0, value * (1.0 + rng.normal(0.0, self._noise))))
            for key, value in base.selectivities.items()
        }
        return StatisticsSnapshot(rates, selectivities, timestamp=now)


class CollectorBackedProvider(StatisticsProvider):
    """Adapter exposing a :class:`StatisticsCollector` as a provider."""

    def __init__(self, collector) -> None:
        self._collector = collector

    def snapshot(self, now: float) -> StatisticsSnapshot:
        return self._collector.snapshot(now)

"""Statistics substrate.

This package maintains the quantities the adaptation layer monitors: event
arrival rates and inter-event predicate selectivities.  Estimates are
maintained over sliding windows (following the histogram-based techniques
the paper cites) by :class:`StatisticsCollector`; experiments can instead
use a :class:`GroundTruthStatisticsProvider` backed by a dataset simulator's
known generating process.
"""

from repro.statistics.snapshot import StatisticsSnapshot, pair_key
from repro.statistics.sliding_window import (
    BucketedSlidingCounter,
    SlidingWindowRateEstimator,
    SlidingSelectivityEstimator,
)
from repro.statistics.collector import StatisticsCollector
from repro.statistics.provider import (
    StatisticsProvider,
    GroundTruthStatisticsProvider,
    NoisyStatisticsProvider,
    StaticStatisticsProvider,
)
from repro.statistics.timevarying import (
    TimeVaryingValue,
    ConstantValue,
    StepValue,
    OscillatingValue,
    RandomWalkValue,
    LinearDriftValue,
)

__all__ = [
    "StatisticsSnapshot",
    "pair_key",
    "BucketedSlidingCounter",
    "SlidingWindowRateEstimator",
    "SlidingSelectivityEstimator",
    "StatisticsCollector",
    "StatisticsProvider",
    "GroundTruthStatisticsProvider",
    "NoisyStatisticsProvider",
    "StaticStatisticsProvider",
    "TimeVaryingValue",
    "ConstantValue",
    "StepValue",
    "OscillatingValue",
    "RandomWalkValue",
    "LinearDriftValue",
]

"""Sliding-window estimators for rates and selectivities.

The paper maintains stream statistics with the histogram-based sliding
window techniques of Datar et al.  We implement the same functionality with
a bucketed sliding counter: the window is split into a fixed number of time
buckets, counts are accumulated into the newest bucket and whole buckets
expire as time advances.  This gives O(1) amortised updates, O(buckets)
queries, and bounded relative error (at most one bucket's worth of events),
which is the property the adaptation layer relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import StatisticsError


class BucketedSlidingCounter:
    """Count occurrences over a sliding time window using fixed buckets.

    Parameters
    ----------
    window:
        Window length in stream-time units.
    num_buckets:
        Number of buckets the window is divided into.  More buckets means
        finer expiry granularity at slightly higher query cost.
    """

    __slots__ = (
        "window",
        "num_buckets",
        "_bucket_width",
        "_buckets",
        "_last_time",
        "late_samples",
    )

    def __init__(self, window: float, num_buckets: int = 32):
        if window <= 0:
            raise StatisticsError("sliding window length must be positive")
        if num_buckets < 1:
            raise StatisticsError("num_buckets must be >= 1")
        self.window = float(window)
        self.num_buckets = int(num_buckets)
        self._bucket_width = self.window / self.num_buckets
        # Each bucket is [start_time, count]; newest last.
        self._buckets: Deque[Tuple[float, float]] = deque()
        self._last_time: Optional[float] = None
        #: Out-of-order updates absorbed so far (clamped into the newest
        #: bucket rather than rejected).
        self.late_samples = 0

    def add(self, timestamp: float, amount: float = 1.0) -> None:
        """Record ``amount`` occurrences at ``timestamp``.

        Timestamps are expected to be non-decreasing; a *boundedly* late
        (out-of-order) update — within one window of the newest time seen —
        is tolerated rather than fatal: it is clamped forward into the
        newest bucket and counted in :attr:`late_samples`.  The error this
        introduces is bounded by the disorder the caller lets through (at
        most one lateness-bound worth of misattribution), which is the
        right trade for statistics collection: estimates degrade gracefully
        instead of a disordered feed killing the run.  An update more than
        a full window behind still raises :class:`StatisticsError` — at
        that distance it could not contribute to any estimate, and the
        usual cause is a caller bug (e.g. re-running a single-run engine),
        which should stay loud.
        """
        if self._last_time is not None and timestamp < self._last_time - 1e-9:
            if timestamp < self._last_time - self.window:
                raise StatisticsError(
                    f"out-of-order update beyond one window: {timestamp} < "
                    f"last seen {self._last_time} - window {self.window:g} "
                    "(disordered feeds should be bounded by the event-time "
                    "ordering stage; engines are single-run)"
                )
            self.late_samples += 1
            timestamp = self._last_time
        self._last_time = timestamp
        bucket_start = self._bucket_start(timestamp)
        if self._buckets and self._buckets[-1][0] == bucket_start:
            start, count = self._buckets[-1]
            self._buckets[-1] = (start, count + amount)
        else:
            self._buckets.append((bucket_start, amount))
        self._expire(timestamp)

    def __setstate__(self, state) -> None:
        # Engine checkpoints written before `late_samples` existed pickle
        # this class without that slot; default it so restored counters
        # clamp late updates instead of dying on an unset attribute.
        dict_state, slot_state = (
            state if isinstance(state, tuple) else (state, None)
        )
        for source in (dict_state, slot_state):
            if source:
                for key, value in source.items():
                    setattr(self, key, value)
        if not hasattr(self, "late_samples"):
            self.late_samples = 0

    def advance(self, timestamp: float) -> None:
        """Advance time without recording an occurrence (expires old buckets)."""
        if self._last_time is None or timestamp > self._last_time:
            self._last_time = timestamp
        self._expire(timestamp)

    def count(self, now: Optional[float] = None) -> float:
        """Total count within the window ending at ``now`` (default: last seen)."""
        reference = self._reference_time(now)
        if reference is None:
            return 0.0
        cutoff = reference - self.window
        return sum(count for start, count in self._buckets if start + self._bucket_width > cutoff)

    def rate(self, now: Optional[float] = None) -> float:
        """Occurrences per time unit over the (possibly partially filled) window."""
        reference = self._reference_time(now)
        if reference is None:
            return 0.0
        if not self._buckets:
            return 0.0
        oldest_start = self._buckets[0][0]
        elapsed = max(reference - oldest_start, self._bucket_width)
        effective = min(elapsed, self.window)
        return self.count(now=reference) / effective

    def _reference_time(self, now: Optional[float]) -> Optional[float]:
        if now is not None:
            return now
        return self._last_time

    def _bucket_start(self, timestamp: float) -> float:
        return (timestamp // self._bucket_width) * self._bucket_width

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._buckets and self._buckets[0][0] + self._bucket_width <= cutoff:
            self._buckets.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BucketedSlidingCounter(window={self.window:g}, "
            f"buckets={len(self._buckets)}/{self.num_buckets})"
        )


class SlidingWindowRateEstimator:
    """Estimate the arrival rate of a single event type over a sliding window."""

    def __init__(self, window: float, num_buckets: int = 32):
        self._counter = BucketedSlidingCounter(window, num_buckets)

    def observe(self, timestamp: float) -> None:
        """Record the arrival of one event at ``timestamp``."""
        self._counter.add(timestamp)

    def advance(self, timestamp: float) -> None:
        """Advance time so stale observations drop out of the window."""
        self._counter.advance(timestamp)

    def rate(self, now: Optional[float] = None) -> float:
        """Current estimated arrival rate (events per time unit)."""
        return self._counter.rate(now)

    def count(self, now: Optional[float] = None) -> float:
        """Number of events currently inside the window."""
        return self._counter.count(now)

    @property
    def late_samples(self) -> int:
        """Out-of-order observations absorbed (clamped) so far."""
        return self._counter.late_samples


class SlidingSelectivityEstimator:
    """Estimate the success probability of a predicate over a sliding window.

    The runtime engine reports every evaluation of the predicate (attempted
    pairings of events) together with its outcome; the estimator keeps
    windowed counts of attempts and successes.

    Parameters
    ----------
    window:
        Window length in stream-time units.
    num_buckets:
        Bucket count for the underlying sliding counters.
    prior_selectivity:
        Value returned before any evaluation has been observed, and blended
        in with weight ``prior_weight`` afterwards to damp early noise.
    prior_weight:
        Pseudo-count weight of the prior.
    """

    def __init__(
        self,
        window: float,
        num_buckets: int = 32,
        prior_selectivity: float = 0.5,
        prior_weight: float = 4.0,
    ):
        if not 0.0 <= prior_selectivity <= 1.0:
            raise StatisticsError("prior_selectivity must be in [0, 1]")
        if prior_weight < 0:
            raise StatisticsError("prior_weight must be >= 0")
        self._attempts = BucketedSlidingCounter(window, num_buckets)
        self._successes = BucketedSlidingCounter(window, num_buckets)
        self._prior_selectivity = prior_selectivity
        self._prior_weight = prior_weight

    def observe(self, timestamp: float, success: bool) -> None:
        """Record one predicate evaluation and its outcome."""
        self._attempts.add(timestamp)
        if success:
            self._successes.add(timestamp)
        else:
            self._successes.advance(timestamp)

    def observe_many(
        self, timestamp: float, attempts: float, successes: float = 0.0
    ) -> None:
        """Record a batch of evaluations sharing one timestamp in O(1).

        The bucketed counters already accumulate arbitrary amounts, so a
        columnar kernel or an index probe that adjudicated ``attempts``
        pairings at once (``successes`` of which held) reports them in a
        single update instead of one call per pairing.
        """
        if attempts < successes:
            raise StatisticsError("successes cannot exceed attempts")
        if attempts <= 0:
            return
        self._attempts.add(timestamp, attempts)
        if successes > 0:
            self._successes.add(timestamp, successes)
        else:
            self._successes.advance(timestamp)

    def advance(self, timestamp: float) -> None:
        """Advance time so stale evaluations drop out of the window."""
        self._attempts.advance(timestamp)
        self._successes.advance(timestamp)

    def selectivity(self, now: Optional[float] = None) -> float:
        """Current estimated selectivity in ``[0, 1]``."""
        attempts = self._attempts.count(now)
        successes = self._successes.count(now)
        numerator = successes + self._prior_selectivity * self._prior_weight
        denominator = attempts + self._prior_weight
        if denominator == 0:
            return self._prior_selectivity
        return min(1.0, max(0.0, numerator / denominator))

    def attempts(self, now: Optional[float] = None) -> float:
        """Number of evaluations currently inside the window."""
        return self._attempts.count(now)

    @property
    def late_samples(self) -> int:
        """Out-of-order observations absorbed (clamped) so far."""
        return self._attempts.late_samples

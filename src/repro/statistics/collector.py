"""Online statistics collection from the running engine.

The :class:`StatisticsCollector` is the "statistics estimation" component of
the paper's ACEP architecture (Figure 2): it consumes the same event stream
as the evaluation mechanism, maintains sliding-window arrival-rate
estimators per event type and selectivity estimators per condition pair,
and produces :class:`~repro.statistics.StatisticsSnapshot` objects on
demand for the optimizer and the reoptimizing decision function.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import StatisticsError
from repro.events import Event, EventType
from repro.patterns import Pattern
from repro.statistics.sliding_window import (
    SlidingSelectivityEstimator,
    SlidingWindowRateEstimator,
)
from repro.statistics.snapshot import PairKey, StatisticsSnapshot, pair_key


class StatisticsCollector:
    """Maintains sliding-window statistics for one pattern's event types.

    Parameters
    ----------
    window:
        Length of the estimation sliding window (stream-time units).  A
        common choice is a small multiple of the pattern's time window.
    num_buckets:
        Bucket granularity of the underlying sliding counters.
    prior_selectivity:
        Prior used by selectivity estimators before evidence accumulates.
    """

    def __init__(
        self,
        window: float,
        num_buckets: int = 32,
        prior_selectivity: float = 0.5,
    ):
        if window <= 0:
            raise StatisticsError("statistics window must be positive")
        self._window = float(window)
        self._num_buckets = num_buckets
        self._prior_selectivity = prior_selectivity
        self._rate_estimators: Dict[str, SlidingWindowRateEstimator] = {}
        self._selectivity_estimators: Dict[PairKey, SlidingSelectivityEstimator] = {}
        self._last_time: float = 0.0

    def _delta_keyed_state(self):
        """Change-tracked collections for incremental snapshots.

        The sliding counters' bucket runs are the bulk of collector state
        and evolve append-at-the-tail / expire-at-the-head, so between two
        checkpoints only a handful of buckets differ — exactly what
        :mod:`repro.streaming.delta` ships.  Dict enumeration order is
        insertion order, which pickling preserves, so the slot names are
        stable across a snapshot/restore round trip.
        """
        slots = []
        for name, estimator in self._rate_estimators.items():
            slots.append((f"rate[{name}]", estimator._counter, "_buckets"))
        for key, estimator in self._selectivity_estimators.items():
            slots.append((f"sel[{key}].attempts", estimator._attempts, "_buckets"))
            slots.append((f"sel[{key}].successes", estimator._successes, "_buckets"))
        return slots

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_event_type(self, event_type: EventType) -> None:
        """Start tracking arrival rate for an event type (idempotent)."""
        self._rate_estimators.setdefault(
            event_type.name,
            SlidingWindowRateEstimator(self._window, self._num_buckets),
        )

    def register_pair(self, a: str, b: str) -> None:
        """Start tracking selectivity for a variable pair (idempotent)."""
        self._selectivity_estimators.setdefault(
            pair_key(a, b),
            SlidingSelectivityEstimator(
                self._window, self._num_buckets, self._prior_selectivity
            ),
        )

    def register_pattern(self, pattern: Pattern) -> None:
        """Register all event types and condition pairs of a pattern."""
        for event_type in pattern.event_types:
            self.register_event_type(event_type)
        for a, b in pattern.conditions.variable_pairs():
            self.register_pair(a, b)
        for item in pattern.items:
            if pattern.conditions.single_variable_conditions(item.variable):
                self.register_pair(item.variable, item.variable)

    def rate_estimator(self, name: str) -> Optional[SlidingWindowRateEstimator]:
        """The live rate estimator for an event type, if registered."""
        return self._rate_estimators.get(name)

    def share_rate(self, name: str, estimator: SlidingWindowRateEstimator) -> None:
        """Point this collector's rate estimate for ``name`` at a shared estimator.

        Multi-pattern serving feeds every event exactly once into one
        estimator per event type; each pattern's collector then reads the
        shared instance instead of double-counting arrivals.
        """
        self._rate_estimators[name] = estimator

    def selectivity_estimator(
        self, a: str, b: str
    ) -> Optional[SlidingSelectivityEstimator]:
        """The live selectivity estimator for a variable pair, if registered."""
        return self._selectivity_estimators.get(pair_key(a, b))

    def share_selectivity(
        self, a: str, b: str, estimator: SlidingSelectivityEstimator
    ) -> None:
        """Point this collector's selectivity for ``a``/``b`` at a shared estimator.

        Used when a shared prefix evaluates a condition pair once on behalf
        of several patterns: every consumer sees the evidence the prefix
        engine accumulated.
        """
        self._selectivity_estimators[pair_key(a, b)] = estimator

    @property
    def tracked_types(self) -> Tuple[str, ...]:
        return tuple(self._rate_estimators)

    @property
    def tracked_pairs(self) -> Tuple[PairKey, ...]:
        return tuple(self._selectivity_estimators)

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def observe_event(self, event: Event) -> None:
        """Record the arrival of a primitive event."""
        estimator = self._rate_estimators.get(event.type_name)
        if estimator is None:
            # Unregistered types are ignored: the collector only tracks the
            # types relevant to its pattern, mirroring per-pattern statistics.
            self._advance(event.timestamp)
            return
        estimator.observe(event.timestamp)
        self._advance(event.timestamp)

    def observe_condition(
        self, a: str, b: str, timestamp: float, success: bool
    ) -> None:
        """Record one evaluation of the condition between variables ``a``/``b``."""
        key = pair_key(a, b)
        estimator = self._selectivity_estimators.get(key)
        if estimator is None:
            return
        estimator.observe(timestamp, success)

    def observe_condition_bulk(
        self,
        a: str,
        b: str,
        timestamp: float,
        attempts: float,
        successes: float = 0.0,
    ) -> None:
        """Record many evaluations of one condition pair in a single update.

        Used by the compiled/columnar hot path: a kernel that adjudicated a
        whole batch (or an index probe that pruned a whole bucket of
        candidate pairings) reports aggregate counts instead of paying one
        estimator update per pairing.
        """
        estimator = self._selectivity_estimators.get(pair_key(a, b))
        if estimator is None:
            return
        estimator.observe_many(timestamp, attempts, successes)

    def advance_time(self, timestamp: float) -> None:
        """Advance all estimators' clocks without new observations."""
        self._advance(timestamp)
        for estimator in self._rate_estimators.values():
            estimator.advance(timestamp)
        for estimator in self._selectivity_estimators.values():
            estimator.advance(timestamp)

    def _advance(self, timestamp: float) -> None:
        if timestamp > self._last_time:
            self._last_time = timestamp

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> StatisticsSnapshot:
        """Produce an immutable snapshot of the current estimates."""
        reference = self._last_time if now is None else now
        rates = {
            name: estimator.rate(reference)
            for name, estimator in self._rate_estimators.items()
        }
        selectivities = {
            key: estimator.selectivity(reference)
            for key, estimator in self._selectivity_estimators.items()
        }
        return StatisticsSnapshot(rates, selectivities, timestamp=reference)

    def seed_from_snapshot(self, snapshot: StatisticsSnapshot) -> None:
        """Warm-start estimators from a known snapshot.

        Injects synthetic observations consistent with the snapshot so the
        first estimates after start-up are sensible rather than zero.  Used
        by experiments that pass initial statistics to the engine, matching
        Algorithm 1's ``in_stat`` argument.
        """
        for name in self._rate_estimators:
            if not snapshot.has_rate(name):
                continue
            rate = snapshot.rate(name)
            estimator = SlidingWindowRateEstimator(self._window, self._num_buckets)
            count = max(1, int(round(rate * self._window)))
            if rate > 0:
                for i in range(count):
                    estimator.observe(self._last_time - self._window * (1 - (i + 1) / count))
                estimator.advance(self._last_time)
            self._rate_estimators[name] = estimator
        for key in self._selectivity_estimators:
            selectivity = snapshot.selectivities.get(key)
            if selectivity is None:
                continue
            estimator = SlidingSelectivityEstimator(
                self._window,
                self._num_buckets,
                prior_selectivity=selectivity,
                prior_weight=16.0,
            )
            self._selectivity_estimators[key] = estimator

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StatisticsCollector(types={len(self._rate_estimators)}, "
            f"pairs={len(self._selectivity_estimators)}, window={self._window:g})"
        )


def pairs_for_pattern(pattern: Pattern) -> Iterable[PairKey]:
    """All variable pairs of a pattern for which selectivities are tracked."""
    yield from pattern.conditions.variable_pairs()
    for item in pattern.items:
        if pattern.conditions.single_variable_conditions(item.variable):
            yield (item.variable, item.variable)

"""Models of time-varying statistic values.

The dataset simulators drive their generating processes (arrival rates,
predicate selectivities) with these small value models.  Each model answers
``value_at(t)``: the ground-truth value of the statistic at stream time
``t``.  Composing them reproduces the two characters the paper describes:

* the *traffic* dataset: highly skewed, stable values with rare, extreme
  regime shifts — modelled with :class:`StepValue`;
* the *stocks* dataset: near-uniform values with frequent minor
  oscillations — modelled with :class:`OscillatingValue` or
  :class:`RandomWalkValue`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StatisticsError


class TimeVaryingValue:
    """A scalar statistic as a function of stream time."""

    def value_at(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def clamp(self, lower: float, upper: float) -> "ClampedValue":
        """Restrict the value to ``[lower, upper]`` (e.g. selectivities to [0,1])."""
        return ClampedValue(self, lower, upper)


class ConstantValue(TimeVaryingValue):
    """A value that never changes."""

    def __init__(self, value: float):
        self._value = float(value)

    def value_at(self, t: float) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantValue({self._value:g})"


class StepValue(TimeVaryingValue):
    """Piecewise-constant value: regime shifts at given times.

    Parameters
    ----------
    initial:
        Value before the first shift.
    steps:
        Sequence of ``(time, value)`` pairs, sorted by time; at each time
        the value jumps to the new level and stays there.
    """

    def __init__(self, initial: float, steps: Sequence[Tuple[float, float]] = ()):
        self._initial = float(initial)
        self._times: List[float] = []
        self._values: List[float] = []
        last_time = -math.inf
        for time, value in steps:
            if time <= last_time:
                raise StatisticsError("StepValue shift times must be strictly increasing")
            last_time = time
            self._times.append(float(time))
            self._values.append(float(value))

    def value_at(self, t: float) -> float:
        index = bisect_right(self._times, t)
        if index == 0:
            return self._initial
        return self._values[index - 1]

    @property
    def shift_times(self) -> Tuple[float, ...]:
        return tuple(self._times)

    def __repr__(self) -> str:
        return f"StepValue(initial={self._initial:g}, steps={len(self._times)})"


class LinearDriftValue(TimeVaryingValue):
    """A value drifting linearly from ``start`` to ``end`` over ``[t0, t1]``."""

    def __init__(self, start: float, end: float, t0: float, t1: float):
        if t1 <= t0:
            raise StatisticsError("LinearDriftValue requires t1 > t0")
        self._start = float(start)
        self._end = float(end)
        self._t0 = float(t0)
        self._t1 = float(t1)

    def value_at(self, t: float) -> float:
        if t <= self._t0:
            return self._start
        if t >= self._t1:
            return self._end
        fraction = (t - self._t0) / (self._t1 - self._t0)
        return self._start + fraction * (self._end - self._start)

    def __repr__(self) -> str:
        return (
            f"LinearDriftValue({self._start:g}->{self._end:g} "
            f"over [{self._t0:g}, {self._t1:g}])"
        )


class OscillatingValue(TimeVaryingValue):
    """A value oscillating sinusoidally around a base level.

    ``value(t) = base * (1 + amplitude * sin(2*pi*t/period + phase))``.
    With a small amplitude this reproduces the frequent-but-minor changes of
    the stocks dataset.
    """

    def __init__(self, base: float, amplitude: float, period: float, phase: float = 0.0):
        if period <= 0:
            raise StatisticsError("OscillatingValue period must be positive")
        if amplitude < 0:
            raise StatisticsError("OscillatingValue amplitude must be >= 0")
        self._base = float(base)
        self._amplitude = float(amplitude)
        self._period = float(period)
        self._phase = float(phase)

    def value_at(self, t: float) -> float:
        oscillation = math.sin(2.0 * math.pi * t / self._period + self._phase)
        return self._base * (1.0 + self._amplitude * oscillation)

    def __repr__(self) -> str:
        return (
            f"OscillatingValue(base={self._base:g}, amp={self._amplitude:g}, "
            f"period={self._period:g})"
        )


class RandomWalkValue(TimeVaryingValue):
    """A value following a pre-sampled bounded random walk.

    The walk is sampled once at construction time on a fixed time grid so
    that ``value_at`` is a deterministic function of ``t`` — repeated calls
    (e.g. from the ground-truth statistics provider and the event generator)
    always agree.
    """

    def __init__(
        self,
        base: float,
        volatility: float,
        horizon: float,
        step: float,
        rng: Optional[np.random.Generator] = None,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ):
        if step <= 0 or horizon <= 0:
            raise StatisticsError("RandomWalkValue requires positive step and horizon")
        if volatility < 0:
            raise StatisticsError("RandomWalkValue volatility must be >= 0")
        rng = rng or np.random.default_rng(0)
        self._base = float(base)
        self._step = float(step)
        count = int(math.ceil(horizon / step)) + 2
        increments = rng.normal(0.0, volatility * base, size=count)
        values = base + np.cumsum(increments)
        if lower is not None or upper is not None:
            values = np.clip(
                values,
                lower if lower is not None else -np.inf,
                upper if upper is not None else np.inf,
            )
        self._values = values

    def value_at(self, t: float) -> float:
        if t <= 0:
            return float(self._values[0])
        index = min(int(t / self._step), len(self._values) - 1)
        return float(self._values[index])

    def __repr__(self) -> str:
        return f"RandomWalkValue(base={self._base:g}, points={len(self._values)})"


class ClampedValue(TimeVaryingValue):
    """Wrap another value model, clamping its output to ``[lower, upper]``."""

    def __init__(self, inner: TimeVaryingValue, lower: float, upper: float):
        if lower > upper:
            raise StatisticsError("ClampedValue requires lower <= upper")
        self._inner = inner
        self._lower = float(lower)
        self._upper = float(upper)

    def value_at(self, t: float) -> float:
        return min(self._upper, max(self._lower, self._inner.value_at(t)))

    def __repr__(self) -> str:
        return f"Clamped({self._inner!r}, [{self._lower:g}, {self._upper:g}])"

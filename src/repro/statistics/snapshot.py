"""Immutable snapshots of the monitored statistics.

A :class:`StatisticsSnapshot` is what the plan-generation algorithms and the
reoptimizing decision functions consume: the current estimates of

* the arrival rate of each event type (events per time unit), and
* the selectivity of the inter-event predicates, keyed by the unordered
  pair of pattern variables they couple (a ``(v, v)`` key holds the
  combined selectivity of the conditions local to variable ``v``).

Snapshots are plain value objects; producing one never mutates estimator
state, so decision functions can be evaluated as often as desired.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import StatisticsError

PairKey = Tuple[str, str]


def pair_key(a: str, b: str) -> PairKey:
    """Canonical (sorted) key for an unordered variable pair."""
    return (a, b) if a <= b else (b, a)


class StatisticsSnapshot:
    """Point-in-time view of arrival rates and selectivities.

    Parameters
    ----------
    rates:
        Mapping from event-type name to estimated arrival rate.
    selectivities:
        Mapping from variable-pair key (see :func:`pair_key`) to estimated
        selectivity in ``[0, 1]``.  Missing pairs default to ``1.0`` (no
        predicate defined), as in the paper's cost formulas.
    timestamp:
        The stream time at which the snapshot was taken.
    """

    __slots__ = ("_rates", "_selectivities", "timestamp")

    def __init__(
        self,
        rates: Mapping[str, float],
        selectivities: Optional[Mapping[PairKey, float]] = None,
        timestamp: float = 0.0,
    ):
        self._rates: Dict[str, float] = {}
        for name, rate in rates.items():
            if rate < 0:
                raise StatisticsError(f"arrival rate for {name!r} must be >= 0, got {rate}")
            self._rates[name] = float(rate)
        self._selectivities: Dict[PairKey, float] = {}
        for key, selectivity in (selectivities or {}).items():
            canonical = pair_key(*key)
            if not 0.0 <= selectivity <= 1.0:
                raise StatisticsError(
                    f"selectivity for {canonical} must be in [0, 1], got {selectivity}"
                )
            self._selectivities[canonical] = float(selectivity)
        self.timestamp = float(timestamp)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def rates(self) -> Mapping[str, float]:
        return dict(self._rates)

    @property
    def selectivities(self) -> Mapping[PairKey, float]:
        return dict(self._selectivities)

    def rate(self, type_name: str) -> float:
        """Arrival rate of an event type (raises if unknown)."""
        try:
            return self._rates[type_name]
        except KeyError:
            raise StatisticsError(f"no arrival rate recorded for type {type_name!r}") from None

    def rate_or_default(self, type_name: str, default: float = 0.0) -> float:
        return self._rates.get(type_name, default)

    def has_rate(self, type_name: str) -> bool:
        return type_name in self._rates

    def selectivity(self, a: str, b: str) -> float:
        """Selectivity of the predicate between variables ``a`` and ``b``.

        Defaults to 1.0 when no predicate (hence no estimate) exists,
        matching the convention in the paper's cost expressions.
        """
        return self._selectivities.get(pair_key(a, b), 1.0)

    def local_selectivity(self, variable: str) -> float:
        """Combined selectivity of conditions local to a single variable."""
        return self._selectivities.get((variable, variable), 1.0)

    # ------------------------------------------------------------------
    # Derived snapshots
    # ------------------------------------------------------------------
    def restrict(self, type_names: Iterable[str]) -> "StatisticsSnapshot":
        """Return a snapshot containing only the given event types' rates."""
        wanted = set(type_names)
        return StatisticsSnapshot(
            {name: rate for name, rate in self._rates.items() if name in wanted},
            self._selectivities,
            timestamp=self.timestamp,
        )

    def with_rate(self, type_name: str, rate: float) -> "StatisticsSnapshot":
        """Return a copy with one arrival rate replaced."""
        rates = dict(self._rates)
        rates[type_name] = rate
        return StatisticsSnapshot(rates, self._selectivities, timestamp=self.timestamp)

    def with_selectivity(self, a: str, b: str, selectivity: float) -> "StatisticsSnapshot":
        """Return a copy with one selectivity replaced."""
        selectivities = dict(self._selectivities)
        selectivities[pair_key(a, b)] = selectivity
        return StatisticsSnapshot(self._rates, selectivities, timestamp=self.timestamp)

    # ------------------------------------------------------------------
    # Comparisons (used by the constant-threshold decision policy)
    # ------------------------------------------------------------------
    def max_relative_deviation(self, other: "StatisticsSnapshot") -> float:
        """Largest relative change of any shared statistic vs ``other``.

        The constant-threshold baseline from ZStream triggers a
        reoptimization when this value exceeds its threshold ``t``.
        """
        deviation = 0.0
        for name, rate in self._rates.items():
            if other.has_rate(name):
                deviation = max(deviation, _relative_change(other.rate(name), rate))
        for key, selectivity in self._selectivities.items():
            other_value = other._selectivities.get(key)
            if other_value is not None:
                deviation = max(deviation, _relative_change(other_value, selectivity))
        return deviation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatisticsSnapshot):
            return NotImplemented
        return (
            self._rates == other._rates and self._selectivities == other._selectivities
        )

    def __repr__(self) -> str:
        return (
            f"StatisticsSnapshot(rates={self._rates!r}, "
            f"selectivities={len(self._selectivities)} pairs, t={self.timestamp:g})"
        )


def _relative_change(baseline: float, current: float) -> float:
    """Relative change of ``current`` with respect to ``baseline``."""
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return abs(current - baseline) / abs(baseline)

"""Condition set: the pattern's WHERE clause as seen by the planner.

The planner works with per-variable-pair selectivities.  A
:class:`ConditionSet` holds the flattened conjuncts of a pattern's condition
and indexes them by the variables they reference, so that

* the runtime engines can evaluate exactly the conditions that become
  fully bound when a new event is added to a partial match, and
* the statistics layer can associate each conjunct with the (unordered)
  pair of pattern variables whose selectivity it determines.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.conditions.base import AndCondition, Condition, TrueCondition


class ConditionSet:
    """An indexed collection of atomic (flattened) conditions."""

    def __init__(self, condition: Condition = None):
        self._conjuncts: List[Condition] = []
        self._by_variables: Dict[FrozenSet[str], List[Condition]] = {}
        self._keys: set = set()
        if condition is not None:
            self.add(condition)

    @classmethod
    def from_conditions(cls, conditions: Iterable[Condition]) -> "ConditionSet":
        """Build a set from an iterable of conditions (conjoined)."""
        condition_set = cls()
        for condition in conditions:
            condition_set.add(condition)
        return condition_set

    def add(self, condition: Condition) -> None:
        """Add a condition; top-level conjunctions are flattened.

        Repeated conjuncts — same :meth:`Condition.cache_key` — are dropped
        so a predicate duplicated in the pattern's WHERE clause is never
        evaluated (or compiled) twice per edge.  Opaque conditions carry
        per-instance keys, so only *provably* identical conjuncts merge.
        """
        for conjunct in condition.flatten():
            if isinstance(conjunct, TrueCondition):
                continue
            cache_key = conjunct.cache_key()
            if cache_key in self._keys:
                continue
            self._keys.add(cache_key)
            self._conjuncts.append(conjunct)
            key = conjunct.variables
            self._by_variables.setdefault(key, []).append(conjunct)

    # ------------------------------------------------------------------
    # Introspection used by the planner and statistics layer
    # ------------------------------------------------------------------
    @property
    def conjuncts(self) -> Sequence[Condition]:
        return tuple(self._conjuncts)

    def __len__(self) -> int:
        return len(self._conjuncts)

    def __iter__(self) -> Iterator[Condition]:
        return iter(self._conjuncts)

    def variables(self) -> FrozenSet[str]:
        """All variables referenced by any condition."""
        names: FrozenSet[str] = frozenset()
        for conjunct in self._conjuncts:
            names |= conjunct.variables
        return names

    def conditions_over(self, variables: Iterable[str]) -> List[Condition]:
        """Conditions whose referenced variables are a subset of ``variables``."""
        available = frozenset(variables)
        return [c for c in self._conjuncts if c.variables <= available]

    def conditions_between(self, group_a: Iterable[str], group_b: Iterable[str]) -> List[Condition]:
        """Conditions that couple the two (disjoint) variable groups.

        Used by the tree engine / ZStream cost model: the selectivity of an
        internal node is the product over conditions linking its left and
        right subtrees.
        """
        set_a = frozenset(group_a)
        set_b = frozenset(group_b)
        selected = []
        for conjunct in self._conjuncts:
            refs = conjunct.variables
            if refs & set_a and refs & set_b and refs <= (set_a | set_b):
                selected.append(conjunct)
        return selected

    def newly_applicable(
        self, previously_bound: Iterable[str], newly_bound: str
    ) -> List[Condition]:
        """Conditions that become fully bound when ``newly_bound`` is added.

        The engines call this when extending a partial match so each
        condition is evaluated exactly once per match.
        """
        before = frozenset(previously_bound)
        after = before | {newly_bound}
        return [
            c
            for c in self._conjuncts
            if newly_bound in c.variables and c.variables <= after
        ]

    def variable_pairs(self) -> List[Tuple[str, str]]:
        """Sorted unordered pairs of variables coupled by some condition."""
        pairs = set()
        for conjunct in self._conjuncts:
            refs = sorted(conjunct.variables)
            if len(refs) == 2:
                pairs.add((refs[0], refs[1]))
            elif len(refs) > 2:
                for i, left in enumerate(refs):
                    for right in refs[i + 1 :]:
                        pairs.add((left, right))
        return sorted(pairs)

    def single_variable_conditions(self, variable: str) -> List[Condition]:
        """Conditions referencing only the given variable (local filters)."""
        return list(self._by_variables.get(frozenset({variable}), []))

    def as_condition(self) -> Condition:
        """Reassemble the set as a single :class:`Condition`."""
        if not self._conjuncts:
            return TrueCondition()
        if len(self._conjuncts) == 1:
            return self._conjuncts[0]
        return AndCondition(self._conjuncts)

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        """Evaluate the whole conjunction against a binding."""
        return all(conjunct.evaluate(binding) for conjunct in self._conjuncts)

    def __repr__(self) -> str:
        return f"ConditionSet({len(self._conjuncts)} conditions)"

"""Predicate (condition) framework.

Conditions express the ``WHERE`` clause of a pattern: Boolean constraints
over the attributes of the primitive events participating in a match.  The
planner cares about which *pairs* of event types a condition couples (to
look up its selectivity); the runtime engines care about evaluating a
condition against concrete bound events.
"""

from repro.conditions.base import (
    Condition,
    TrueCondition,
    AndCondition,
    OrCondition,
    NotCondition,
)
from repro.conditions.atomic import (
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    EqualityCondition,
    PredicateCondition,
)
from repro.conditions.container import ConditionSet

__all__ = [
    "Condition",
    "TrueCondition",
    "AndCondition",
    "OrCondition",
    "NotCondition",
    "AttributeComparisonCondition",
    "AttributeThresholdCondition",
    "EqualityCondition",
    "PredicateCondition",
    "ConditionSet",
]

"""Base condition classes and Boolean combinators.

A condition is defined over pattern *variables* (the names bound to each
primitive event position of a pattern, e.g. ``a``, ``b``, ``c`` in
``SEQ(A a, B b, C c)``).  At runtime the engine supplies a *binding*: a
mapping from variable name to the concrete :class:`~repro.events.Event`
bound to it (or to a list of events for Kleene-closure variables).

Conditions expose:

* ``variables`` — the set of variable names they reference;
* ``evaluate(binding)`` — Boolean evaluation against a (possibly partial)
  binding; a condition evaluates to ``True`` when some referenced variable
  is still unbound, so engines can call conditions eagerly as the partial
  match grows without rejecting matches prematurely.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.errors import PatternError

#: Process-wide counter backing the identity tokens of opaque conditions.
#: Deterministic (construction order) so two identical runs assign the same
#: keys, which keeps profile frames comparable across runs.
_OPAQUE_TOKENS = itertools.count()


class Condition:
    """Abstract Boolean condition over pattern variables."""

    @property
    def variables(self) -> FrozenSet[str]:
        """Names of the pattern variables referenced by this condition."""
        raise NotImplementedError

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        """Evaluate against a binding; unbound variables make it vacuously true."""
        raise NotImplementedError

    def cache_key(self) -> str:
        """Stable identity key for profiling and kernel-compilation caches.

        Unlike ``repr``, two *distinct* conditions never share a key unless
        they are structurally equal comparisons: atomic attribute
        comparisons return a structural key (so equal predicates share
        compiled kernels and profile rows), while opaque conditions — user
        lambdas and unknown subclasses — get a unique per-instance token,
        so two different lambdas with identical reprs no longer merge their
        profile counts.  The token is a plain instance attribute and
        therefore survives pickling: every copy of a condition shipped to a
        process worker reports under the same key.
        """
        token = getattr(self, "_cache_token", None)
        if token is None:
            token = self._cache_token = next(_OPAQUE_TOKENS)
        return f"opaque:{type(self).__name__}:{token}"

    def is_fully_bound(self, binding: Mapping[str, object]) -> bool:
        """Whether every referenced variable is present in ``binding``."""
        return all(variable in binding for variable in self.variables)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return AndCondition([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return OrCondition([self, other])

    def __invert__(self) -> "Condition":
        return NotCondition(self)

    def flatten(self) -> Sequence["Condition"]:
        """Return the atomic conjuncts of this condition.

        Only top-level conjunctions are flattened; disjunctions and
        negations are treated as opaque atoms.  The planner uses this to
        attribute per-pair selectivities.
        """
        return (self,)


class TrueCondition(Condition):
    """The trivially true condition (used when a pattern has no predicates)."""

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        return True

    def cache_key(self) -> str:
        return "true"

    def flatten(self) -> Sequence[Condition]:
        return ()

    def __repr__(self) -> str:
        return "TrueCondition()"


class _CompositeCondition(Condition):
    """Shared implementation for n-ary Boolean combinators."""

    def __init__(self, operands: Iterable[Condition]):
        self._operands: Tuple[Condition, ...] = tuple(operands)
        if not self._operands:
            raise PatternError(f"{type(self).__name__} requires at least one operand")
        for operand in self._operands:
            if not isinstance(operand, Condition):
                raise PatternError(
                    f"composite condition operands must be Conditions, "
                    f"got {type(operand).__name__}"
                )

    @property
    def operands(self) -> Tuple[Condition, ...]:
        return self._operands

    @property
    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for operand in self._operands:
            names |= operand.variables
        return names


class AndCondition(_CompositeCondition):
    """Conjunction of conditions."""

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        return all(operand.evaluate(binding) for operand in self._operands)

    def cache_key(self) -> str:
        return "and(" + "&".join(op.cache_key() for op in self._operands) + ")"

    def flatten(self) -> Sequence[Condition]:
        flattened = []
        for operand in self._operands:
            flattened.extend(operand.flatten())
        return tuple(flattened)

    def __repr__(self) -> str:
        return " & ".join(repr(op) for op in self._operands)


class OrCondition(_CompositeCondition):
    """Disjunction of conditions.

    A disjunction is vacuously true while *any* referenced variable is
    unbound, because a future binding may still satisfy one of the branches.
    """

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        if not self.is_fully_bound(binding):
            return True
        return any(operand.evaluate(binding) for operand in self._operands)

    def cache_key(self) -> str:
        return "or(" + "|".join(op.cache_key() for op in self._operands) + ")"

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(op) for op in self._operands) + ")"


class NotCondition(Condition):
    """Negation of a condition.

    Like :class:`OrCondition`, a negation is only enforced once all the
    referenced variables are bound.
    """

    def __init__(self, operand: Condition):
        if not isinstance(operand, Condition):
            raise PatternError("NotCondition operand must be a Condition")
        self._operand = operand

    @property
    def operand(self) -> Condition:
        return self._operand

    @property
    def variables(self) -> FrozenSet[str]:
        return self._operand.variables

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        if not self.is_fully_bound(binding):
            return True
        return not self._operand.evaluate(binding)

    def cache_key(self) -> str:
        return f"not({self._operand.cache_key()})"

    def __repr__(self) -> str:
        return f"~({self._operand!r})"

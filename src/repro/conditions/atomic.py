"""Atomic conditions: comparisons over event attributes.

These are the leaves of the condition tree.  Each atomic condition knows
which pattern variables it constrains, so the planner can attribute a
selectivity to the (unordered) pair of event positions it couples.

Kleene-closure variables bind to a *list* of events.  Atomic conditions
applied to such a variable are interpreted per-element: the condition must
hold for every event in the list (the usual "all matched events satisfy the
predicate" semantics of SASE-style Kleene operators).
"""

from __future__ import annotations

import operator
from typing import Callable, FrozenSet, Mapping, Optional, Sequence

from repro.conditions.base import _OPAQUE_TOKENS, Condition
from repro.errors import PatternError

_OPERATORS: dict = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def _as_events(bound_value: object) -> Sequence[object]:
    """Normalise a binding value to a sequence of events.

    Kleene variables bind to lists; plain variables bind to single events.
    """
    if isinstance(bound_value, (list, tuple)):
        return bound_value
    return (bound_value,)


class _SingleVariableCondition(Condition):
    """Base class for conditions referencing exactly one variable."""

    def __init__(self, variable: str):
        if not variable:
            raise PatternError("condition variable name must be non-empty")
        self._variable = variable

    @property
    def variable(self) -> str:
        return self._variable

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset({self._variable})


class AttributeThresholdCondition(_SingleVariableCondition):
    """Compare an attribute of one event against a constant.

    Example: ``AttributeThresholdCondition("a", "speed", "<", 60.0)``
    corresponds to the SASE predicate ``a.speed < 60``.
    """

    def __init__(self, variable: str, attribute: str, op: str, value: float):
        super().__init__(variable)
        if op not in _OPERATORS:
            raise PatternError(f"unsupported comparison operator {op!r}")
        self._attribute = attribute
        self._op_symbol = op
        self._op = _OPERATORS[op]
        self._value = value

    @property
    def attribute(self) -> str:
        return self._attribute

    @property
    def op_symbol(self) -> str:
        return self._op_symbol

    @property
    def value(self) -> float:
        return self._value

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        if self._variable not in binding:
            return True
        for event in _as_events(binding[self._variable]):
            attr = event.get(self._attribute)
            if attr is None or not self._op(attr, self._value):
                return False
        return True

    def cache_key(self) -> str:
        return (
            f"thr:{self._variable}.{self._attribute}"
            f"{self._op_symbol}{self._value!r}"
        )

    def __repr__(self) -> str:
        return f"{self._variable}.{self._attribute} {self._op_symbol} {self._value!r}"


class AttributeComparisonCondition(Condition):
    """Compare attributes of two different pattern variables.

    Example: ``AttributeComparisonCondition("a", "person_id", "==", "b",
    "person_id")`` corresponds to ``a.person_id = b.person_id`` from the
    paper's Example 1.
    """

    def __init__(
        self,
        left_variable: str,
        left_attribute: str,
        op: str,
        right_variable: str,
        right_attribute: str,
    ):
        if op not in _OPERATORS:
            raise PatternError(f"unsupported comparison operator {op!r}")
        if left_variable == right_variable:
            raise PatternError(
                "AttributeComparisonCondition requires two distinct variables; "
                "use AttributeThresholdCondition or PredicateCondition instead"
            )
        self._left_variable = left_variable
        self._left_attribute = left_attribute
        self._right_variable = right_variable
        self._right_attribute = right_attribute
        self._op_symbol = op
        self._op = _OPERATORS[op]

    @property
    def left_variable(self) -> str:
        return self._left_variable

    @property
    def right_variable(self) -> str:
        return self._right_variable

    @property
    def left_attribute(self) -> str:
        return self._left_attribute

    @property
    def right_attribute(self) -> str:
        return self._right_attribute

    @property
    def op_symbol(self) -> str:
        return self._op_symbol

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset({self._left_variable, self._right_variable})

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        if (
            self._left_variable not in binding
            or self._right_variable not in binding
        ):
            return True
        left_events = _as_events(binding[self._left_variable])
        right_events = _as_events(binding[self._right_variable])
        for left in left_events:
            left_value = left.get(self._left_attribute)
            if left_value is None:
                return False
            for right in right_events:
                right_value = right.get(self._right_attribute)
                if right_value is None or not self._op(left_value, right_value):
                    return False
        return True

    def cache_key(self) -> str:
        return (
            f"cmp:{self._left_variable}.{self._left_attribute}"
            f"{self._op_symbol}{self._right_variable}.{self._right_attribute}"
        )

    def __repr__(self) -> str:
        return (
            f"{self._left_variable}.{self._left_attribute} {self._op_symbol} "
            f"{self._right_variable}.{self._right_attribute}"
        )


class EqualityCondition(AttributeComparisonCondition):
    """Equality join between the same attribute of two variables.

    A convenience shorthand for the very common equi-join predicate, e.g.
    ``EqualityCondition("a", "b", "person_id")``.
    """

    def __init__(self, left_variable: str, right_variable: str, attribute: str):
        super().__init__(left_variable, attribute, "==", right_variable, attribute)


class PredicateCondition(Condition):
    """Arbitrary user-supplied predicate over one or more variables.

    The predicate receives the bound events positionally in the order the
    variables were declared.  For Kleene variables the bound value is the
    list of events.

    Parameters
    ----------
    variables:
        The variable names the predicate constrains, in call order.
    predicate:
        Callable returning a truthy value when the condition is satisfied.
    name:
        Optional label used in ``repr`` and planner diagnostics.
    """

    def __init__(
        self,
        variables: Sequence[str],
        predicate: Callable[..., bool],
        name: Optional[str] = None,
    ):
        if not variables:
            raise PatternError("PredicateCondition requires at least one variable")
        if len(set(variables)) != len(variables):
            raise PatternError("PredicateCondition variables must be distinct")
        self._ordered_variables = tuple(variables)
        self._predicate = predicate
        self._name = name or getattr(predicate, "__name__", "predicate")
        # Assigned eagerly (not lazily like the base class) so the token is
        # minted before any copy of this condition is pickled to a process
        # worker — every replica then profiles under the same key, while
        # two *different* lambdas with identical reprs keep distinct keys.
        self.cache_key()

    @property
    def ordered_variables(self) -> Sequence[str]:
        return self._ordered_variables

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset(self._ordered_variables)

    def evaluate(self, binding: Mapping[str, object]) -> bool:
        if not self.is_fully_bound(binding):
            return True
        arguments = [binding[variable] for variable in self._ordered_variables]
        return bool(self._predicate(*arguments))

    def cache_key(self) -> str:
        token = getattr(self, "_cache_token", None)
        if token is None:
            token = self._cache_token = next(_OPAQUE_TOKENS)
        return (
            f"pred:{self._name}({','.join(self._ordered_variables)})#{token}"
        )

    def __repr__(self) -> str:
        return f"{self._name}({', '.join(self._ordered_variables)})"

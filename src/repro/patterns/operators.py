"""Pattern operators supported by the library.

The paper's evaluation exercises five pattern families built from these
operators: plain sequences, conjunctions, sequences with a negated event,
sequences with a Kleene-closure event, and composite patterns (disjunctions
of sequences).
"""

from __future__ import annotations

from enum import Enum


class PatternOperator(Enum):
    """Top-level or item-level pattern operators.

    ``SEQUENCE`` and ``CONJUNCTION`` are top-level operators over the
    pattern's primitive items.  ``DISJUNCTION`` is the top-level operator of
    a :class:`~repro.patterns.CompositePattern`.  ``NEGATION`` and
    ``KLEENE_CLOSURE`` are item-level modifiers attached to individual
    primitive events.
    """

    SEQUENCE = "SEQ"
    CONJUNCTION = "AND"
    DISJUNCTION = "OR"
    NEGATION = "NOT"
    KLEENE_CLOSURE = "KLEENE"

    def __str__(self) -> str:
        return self.value

    @property
    def is_top_level(self) -> bool:
        """Whether this operator can be a pattern's root operator."""
        return self in (
            PatternOperator.SEQUENCE,
            PatternOperator.CONJUNCTION,
            PatternOperator.DISJUNCTION,
        )

    @property
    def is_modifier(self) -> bool:
        """Whether this operator modifies a single primitive item."""
        return self in (PatternOperator.NEGATION, PatternOperator.KLEENE_CLOSURE)

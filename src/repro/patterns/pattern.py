"""Pattern and pattern-item definitions.

A :class:`Pattern` has a top-level operator (sequence or conjunction), an
ordered list of :class:`PatternItem` positions, a condition set and a time
window.  Items can carry negation or Kleene-closure modifiers, matching the
five pattern families used in the paper's evaluation.

A :class:`CompositePattern` is a disjunction of sub-patterns; following the
paper, each sub-pattern is planned and evaluated independently and their
matches are unioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.conditions import Condition, ConditionSet, TrueCondition
from repro.errors import PatternError
from repro.events import EventType
from repro.patterns.operators import PatternOperator


@dataclass(frozen=True)
class PatternItem:
    """One primitive-event position within a pattern.

    Parameters
    ----------
    variable:
        Name the position is bound to in conditions (e.g. ``"a"``).
    event_type:
        The :class:`EventType` accepted at this position.
    negated:
        Whether the position is under a negation operator (the match is
        valid only if no such event occurs).
    kleene:
        Whether the position is under Kleene closure (one or more events of
        the type are accepted and bound as a list).
    """

    variable: str
    event_type: EventType
    negated: bool = False
    kleene: bool = False

    def __post_init__(self) -> None:
        if not self.variable:
            raise PatternError("pattern item variable name must be non-empty")
        if self.negated and self.kleene:
            raise PatternError(
                f"item {self.variable!r}: negation and Kleene closure "
                "cannot be combined on the same item"
            )

    @property
    def type_name(self) -> str:
        return self.event_type.name

    def __repr__(self) -> str:
        prefix = "~" if self.negated else ""
        suffix = "*" if self.kleene else ""
        return f"{prefix}{self.event_type.name}{suffix} {self.variable}"


class Pattern:
    """A single (non-composite) complex event pattern.

    Parameters
    ----------
    operator:
        ``PatternOperator.SEQUENCE`` or ``PatternOperator.CONJUNCTION``.
    items:
        Ordered pattern items.  For sequences the order is the required
        temporal order of the positive items.
    condition:
        A :class:`Condition` or :class:`ConditionSet` over the item
        variables (the WHERE clause).  Defaults to the trivially true
        condition.
    window:
        Length of the time window (WITHIN clause) in the same units as
        event timestamps.
    name:
        Optional pattern name used in reports.
    """

    def __init__(
        self,
        operator: PatternOperator,
        items: Sequence[PatternItem],
        condition: Optional[Condition] = None,
        window: float = float("inf"),
        name: Optional[str] = None,
    ):
        if operator not in (PatternOperator.SEQUENCE, PatternOperator.CONJUNCTION):
            raise PatternError(
                f"Pattern root operator must be SEQUENCE or CONJUNCTION, got {operator}; "
                "use CompositePattern for disjunctions"
            )
        items = tuple(items)
        if not items:
            raise PatternError("a pattern requires at least one item")
        variables = [item.variable for item in items]
        if len(set(variables)) != len(variables):
            raise PatternError(f"duplicate pattern variables: {variables}")
        if window <= 0:
            raise PatternError("pattern window must be positive")
        positive = [item for item in items if not item.negated]
        if not positive:
            raise PatternError("a pattern must contain at least one positive item")

        self._operator = operator
        self._items = items
        self._positive_items = tuple(positive)
        self._positive_index = {
            item.variable: index for index, item in enumerate(positive)
        }
        self._window = float(window)
        self._name = name or self._default_name()
        if isinstance(condition, ConditionSet):
            self._conditions = condition
        else:
            self._conditions = ConditionSet(condition or TrueCondition())
        unknown = self._conditions.variables() - set(variables)
        if unknown:
            raise PatternError(
                f"condition references unknown variables: {sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def operator(self) -> PatternOperator:
        return self._operator

    @property
    def items(self) -> Tuple[PatternItem, ...]:
        return self._items

    @property
    def conditions(self) -> ConditionSet:
        return self._conditions

    @property
    def window(self) -> float:
        return self._window

    @property
    def name(self) -> str:
        return self._name

    def _default_name(self) -> str:
        type_names = ",".join(item.event_type.name for item in self._items)
        return f"{self._operator.value}({type_names})"

    # ------------------------------------------------------------------
    # Derived views used by the planner and the engines
    # ------------------------------------------------------------------
    @property
    def positive_items(self) -> Tuple[PatternItem, ...]:
        """Items that must occur (not under negation)."""
        return self._positive_items

    @property
    def negated_items(self) -> Tuple[PatternItem, ...]:
        """Items under the negation operator."""
        return tuple(item for item in self._items if item.negated)

    @property
    def kleene_items(self) -> Tuple[PatternItem, ...]:
        """Items under Kleene closure."""
        return tuple(item for item in self._items if item.kleene)

    @property
    def size(self) -> int:
        """Pattern size as defined in the paper.

        The number of positive items; Kleene-closure items count, negated
        items do not (Appendix A).
        """
        return len(self.positive_items)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(item.variable for item in self._items)

    @property
    def event_types(self) -> Tuple[EventType, ...]:
        return tuple(item.event_type for item in self._items)

    def item_by_variable(self, variable: str) -> PatternItem:
        for item in self._items:
            if item.variable == variable:
                return item
        raise PatternError(f"pattern {self._name!r} has no variable {variable!r}")

    def items_by_type(self, type_name: str) -> List[PatternItem]:
        return [item for item in self._items if item.event_type.name == type_name]

    def positive_index(self, variable: str) -> int:
        """Index of a variable among the positive items (sequence order)."""
        try:
            return self._positive_index[variable]
        except KeyError:
            raise PatternError(
                f"variable {variable!r} is not a positive item of pattern "
                f"{self._name!r}"
            ) from None

    def type_names(self) -> Tuple[str, ...]:
        return tuple(item.event_type.name for item in self._items)

    def distinct_type_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for item in self._items:
            seen.setdefault(item.event_type.name, None)
        return tuple(seen)

    def is_sequence(self) -> bool:
        return self._operator is PatternOperator.SEQUENCE

    def is_conjunction(self) -> bool:
        return self._operator is PatternOperator.CONJUNCTION

    def subpatterns(self) -> Tuple["Pattern", ...]:
        """Uniform interface with :class:`CompositePattern`."""
        return (self,)

    def __repr__(self) -> str:
        items = ", ".join(repr(item) for item in self._items)
        return f"Pattern<{self._operator.value}>({items}; window={self._window:g})"


class CompositePattern:
    """A disjunction (OR) of independent sub-patterns.

    Matches the paper's "composite patterns" family: a match of any
    sub-pattern is a match of the composite.  Each sub-pattern keeps its own
    plan, its own statistics and its own adaptation state.
    """

    def __init__(self, patterns: Sequence[Pattern], name: Optional[str] = None):
        patterns = tuple(patterns)
        if len(patterns) < 2:
            raise PatternError("a composite pattern requires at least two sub-patterns")
        self._patterns = patterns
        self._name = name or " | ".join(p.name for p in patterns)

    @property
    def operator(self) -> PatternOperator:
        return PatternOperator.DISJUNCTION

    @property
    def name(self) -> str:
        return self._name

    @property
    def window(self) -> float:
        return max(p.window for p in self._patterns)

    @property
    def size(self) -> int:
        """Composite pattern size: the size of each sub-sequence (Appendix A)."""
        return max(p.size for p in self._patterns)

    def subpatterns(self) -> Tuple[Pattern, ...]:
        return self._patterns

    def event_types(self) -> Tuple[EventType, ...]:
        types: List[EventType] = []
        seen = set()
        for pattern in self._patterns:
            for event_type in pattern.event_types:
                if event_type.name not in seen:
                    seen.add(event_type.name)
                    types.append(event_type)
        return tuple(types)

    def __repr__(self) -> str:
        return f"CompositePattern({' | '.join(p.name for p in self._patterns)})"


def validate_pattern_types(
    pattern: Pattern, known_types: Iterable[EventType]
) -> None:
    """Check that every event type referenced by ``pattern`` is known.

    Raises :class:`PatternError` otherwise.  Useful when wiring patterns to
    dataset simulators in experiments.
    """
    known = {t.name for t in known_types}
    missing = [
        item.event_type.name
        for item in pattern.items
        if item.event_type.name not in known
    ]
    if missing:
        raise PatternError(
            f"pattern {pattern.name!r} references unknown event types: {missing}"
        )

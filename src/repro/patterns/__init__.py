"""Pattern specification layer.

Patterns describe which combinations of primitive events should be reported
as complex events: an operator (sequence, conjunction, disjunction), the
participating event types with optional negation / Kleene-closure modifiers,
a Boolean condition over the events' attributes, and a time window.
"""

from repro.patterns.operators import PatternOperator
from repro.patterns.pattern import Pattern, PatternItem, CompositePattern
from repro.patterns.builder import PatternBuilder, seq, conjunction, disjunction

__all__ = [
    "PatternOperator",
    "Pattern",
    "PatternItem",
    "CompositePattern",
    "PatternBuilder",
    "seq",
    "conjunction",
    "disjunction",
]

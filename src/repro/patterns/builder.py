"""Fluent builder and helper functions for declaring patterns.

The builder offers a compact, SASE-flavoured way of declaring patterns in
examples and tests::

    pattern = (
        PatternBuilder.sequence()
        .event(camera_a, "a")
        .event(camera_b, "b")
        .event(camera_c, "c")
        .where(EqualityCondition("a", "b", "person_id"))
        .where(EqualityCondition("b", "c", "person_id"))
        .within(600)
        .named("intruder-via-main-gate")
        .build()
    )

Module-level helpers :func:`seq`, :func:`conjunction` and
:func:`disjunction` cover the simple cases in one call.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.conditions import Condition, ConditionSet
from repro.errors import PatternError
from repro.events import EventType
from repro.patterns.operators import PatternOperator
from repro.patterns.pattern import CompositePattern, Pattern, PatternItem


class PatternBuilder:
    """Incrementally assemble a :class:`Pattern`."""

    def __init__(self, operator: PatternOperator):
        if operator not in (PatternOperator.SEQUENCE, PatternOperator.CONJUNCTION):
            raise PatternError(
                "PatternBuilder supports SEQUENCE or CONJUNCTION roots; "
                "use disjunction() for composite patterns"
            )
        self._operator = operator
        self._items: List[PatternItem] = []
        self._conditions = ConditionSet()
        self._window: float = float("inf")
        self._name: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction entry points
    # ------------------------------------------------------------------
    @classmethod
    def sequence(cls) -> "PatternBuilder":
        """Start a SEQ pattern."""
        return cls(PatternOperator.SEQUENCE)

    @classmethod
    def conjunction(cls) -> "PatternBuilder":
        """Start an AND pattern."""
        return cls(PatternOperator.CONJUNCTION)

    # ------------------------------------------------------------------
    # Items
    # ------------------------------------------------------------------
    def event(self, event_type: EventType, variable: Optional[str] = None) -> "PatternBuilder":
        """Append a plain positive event position."""
        return self._add_item(event_type, variable, negated=False, kleene=False)

    def negated_event(
        self, event_type: EventType, variable: Optional[str] = None
    ) -> "PatternBuilder":
        """Append an event position under negation."""
        return self._add_item(event_type, variable, negated=True, kleene=False)

    def kleene_event(
        self, event_type: EventType, variable: Optional[str] = None
    ) -> "PatternBuilder":
        """Append an event position under Kleene closure."""
        return self._add_item(event_type, variable, negated=False, kleene=True)

    def _add_item(
        self,
        event_type: EventType,
        variable: Optional[str],
        negated: bool,
        kleene: bool,
    ) -> "PatternBuilder":
        name = variable or self._default_variable(event_type)
        self._items.append(
            PatternItem(variable=name, event_type=event_type, negated=negated, kleene=kleene)
        )
        return self

    def _default_variable(self, event_type: EventType) -> str:
        base = event_type.name.lower()
        existing = {item.variable for item in self._items}
        if base not in existing:
            return base
        index = 2
        while f"{base}{index}" in existing:
            index += 1
        return f"{base}{index}"

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def where(self, condition: Condition) -> "PatternBuilder":
        """Add a condition (conjoined with previously added ones)."""
        self._conditions.add(condition)
        return self

    def within(self, window: float) -> "PatternBuilder":
        """Set the time window (WITHIN clause)."""
        if window <= 0:
            raise PatternError("window must be positive")
        self._window = float(window)
        return self

    def named(self, name: str) -> "PatternBuilder":
        """Set the pattern name."""
        self._name = name
        return self

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Pattern:
        """Create the pattern (raises :class:`PatternError` if invalid)."""
        return Pattern(
            operator=self._operator,
            items=self._items,
            condition=self._conditions,
            window=self._window,
            name=self._name,
        )


def _items_from_types(
    event_types: Sequence[EventType], variables: Optional[Sequence[str]]
) -> List[PatternItem]:
    if variables is not None and len(variables) != len(event_types):
        raise PatternError("variables must match event_types in length")
    items = []
    used = set()
    for index, event_type in enumerate(event_types):
        if variables is not None:
            variable = variables[index]
        else:
            variable = event_type.name.lower()
            if variable in used:
                variable = f"{variable}{index}"
        used.add(variable)
        items.append(PatternItem(variable=variable, event_type=event_type))
    return items


def seq(
    event_types: Sequence[EventType],
    condition: Optional[Condition] = None,
    window: float = float("inf"),
    variables: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Pattern:
    """Build a SEQ pattern over the given event types in one call."""
    return Pattern(
        PatternOperator.SEQUENCE,
        _items_from_types(event_types, variables),
        condition=condition,
        window=window,
        name=name,
    )


def conjunction(
    event_types: Sequence[EventType],
    condition: Optional[Condition] = None,
    window: float = float("inf"),
    variables: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Pattern:
    """Build an AND pattern over the given event types in one call."""
    return Pattern(
        PatternOperator.CONJUNCTION,
        _items_from_types(event_types, variables),
        condition=condition,
        window=window,
        name=name,
    )


def disjunction(
    patterns: Sequence[Pattern], name: Optional[str] = None
) -> CompositePattern:
    """Build a composite (OR) pattern from sub-patterns."""
    return CompositePattern(patterns, name=name)


PatternLike = Union[Pattern, CompositePattern]

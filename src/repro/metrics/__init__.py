"""Performance metrics collected by the experiment harness."""

from repro.metrics.run_metrics import RunMetrics, ThroughputTimer, aggregate_metrics

__all__ = ["RunMetrics", "ThroughputTimer", "aggregate_metrics"]

"""Performance metrics collected by the experiment harness."""

from repro.metrics.run_metrics import RunMetrics, ThroughputTimer, aggregate_metrics
from repro.metrics.stage_metrics import (
    NetworkMetrics,
    PipelineMetrics,
    StageTiming,
    WorkerLaneMetrics,
)

__all__ = [
    "RunMetrics",
    "ThroughputTimer",
    "aggregate_metrics",
    "NetworkMetrics",
    "PipelineMetrics",
    "StageTiming",
    "WorkerLaneMetrics",
]

"""Run-level performance metrics.

The paper reports four quantities per (dataset, algorithm, adaptation
method, pattern size) cell:

* throughput — primitive events processed per second of execution time;
* relative throughput gain over the non-adaptive (static) method;
* the total number of plan reoptimizations (actual plan replacements);
* computational overhead — the fraction of execution time spent inside the
  decision function ``D`` and the plan generator ``A``.

:class:`RunMetrics` captures these together with auxiliary counters
(matches, partial matches) so tests can assert on engine behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class ThroughputTimer:
    """Wall-clock timer used to measure processing time of a run."""

    def __init__(self) -> None:
        self._started: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "ThroughputTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.elapsed += time.perf_counter() - self._started
            self._started = None


@dataclass
class RunMetrics:
    """Metrics of one engine run over one stream."""

    events_processed: int = 0
    matches_emitted: int = 0
    duration_seconds: float = 0.0
    reoptimizations: int = 0
    decisions_evaluated: int = 0
    time_in_decision: float = 0.0
    time_in_generation: float = 0.0
    partial_matches_created: int = 0
    extension_attempts: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Primitive events processed per second of execution time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.events_processed / self.duration_seconds

    @property
    def adaptation_time(self) -> float:
        return self.time_in_decision + self.time_in_generation

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the run spent in the decision function and the planner."""
        if self.duration_seconds <= 0:
            return 0.0
        return min(1.0, self.adaptation_time / self.duration_seconds)

    def relative_gain_over(self, baseline: "RunMetrics") -> float:
        """Relative throughput gain over a baseline run (1.0 = no gain)."""
        if baseline.throughput <= 0:
            return float("inf") if self.throughput > 0 else 1.0
        return self.throughput / baseline.throughput

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary representation used by report tables."""
        return {
            "events": float(self.events_processed),
            "matches": float(self.matches_emitted),
            "duration_s": self.duration_seconds,
            "throughput": self.throughput,
            "reoptimizations": float(self.reoptimizations),
            "overhead": self.overhead_fraction,
            "partial_matches": float(self.partial_matches_created),
        }

    def __repr__(self) -> str:
        return (
            f"RunMetrics(events={self.events_processed}, matches={self.matches_emitted}, "
            f"throughput={self.throughput:.0f} ev/s, reopt={self.reoptimizations}, "
            f"overhead={self.overhead_fraction:.2%})"
        )


def aggregate_metrics(runs: Iterable[RunMetrics]) -> RunMetrics:
    """Aggregate several runs into one (sums counters, sums durations).

    Used when an experiment cell averages over several patterns (the paper
    averages over its five pattern sets): throughput of the aggregate is
    total events over total time, matching a weighted average.
    """
    runs = list(runs)
    aggregate = RunMetrics()
    for run in runs:
        aggregate.events_processed += run.events_processed
        aggregate.matches_emitted += run.matches_emitted
        aggregate.duration_seconds += run.duration_seconds
        aggregate.reoptimizations += run.reoptimizations
        aggregate.decisions_evaluated += run.decisions_evaluated
        aggregate.time_in_decision += run.time_in_decision
        aggregate.time_in_generation += run.time_in_generation
        aggregate.partial_matches_created += run.partial_matches_created
        aggregate.extension_attempts += run.extension_attempts
    return aggregate


def summarize_rows(rows: List[Dict[str, float]], keys: Iterable[str]) -> Dict[str, float]:
    """Column-wise mean over report rows (helper for experiment summaries)."""
    keys = list(keys)
    if not rows:
        return {key: 0.0 for key in keys}
    return {key: sum(row.get(key, 0.0) for row in rows) / len(rows) for key in keys}

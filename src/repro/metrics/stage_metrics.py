"""Per-stage metrics of the streaming pipeline.

The streaming runtime (:mod:`repro.streaming`) is a staged dataflow —
``source → buffer → engine → sinks`` — and each stage is instrumented
separately so an operator can see *where* a slow pipeline spends its time:
a source-bound pipeline (waiting on rate limiting or file tailing) looks
completely different from an engine-bound one, and a growing queue depth is
the early warning sign of sustained overload.

:class:`StageTiming` is a tiny streaming aggregator (count / total / max)
rather than a histogram: it costs two floats per observation, which matters
on the per-event hot path, while still answering the questions the
experiments report (mean and worst-case stage latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StageTiming:
    """Streaming latency aggregate for one pipeline stage."""

    observations: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.observations += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        if self.observations == 0:
            return 0.0
        return self.total_seconds / self.observations

    def merge(self, other: "StageTiming") -> "StageTiming":
        return StageTiming(
            observations=self.observations + other.observations,
            total_seconds=self.total_seconds + other.total_seconds,
            max_seconds=max(self.max_seconds, other.max_seconds),
        )

    def __repr__(self) -> str:
        return (
            f"StageTiming(n={self.observations}, "
            f"mean={self.mean_seconds * 1e3:.3f}ms, "
            f"max={self.max_seconds * 1e3:.3f}ms)"
        )


@dataclass
class WorkerLaneMetrics:
    """Per-worker gauges of a multi-core streaming backend.

    One lane per shard worker: how many events/batches the worker consumed,
    the high-water mark of its bounded hand-off queue (in batches) and the
    worker-side batch-processing latency.  A skewed partitioner shows up as
    one lane doing most of the events; an overloaded worker shows up as its
    queue high-water pinned at capacity while the others stay shallow.
    """

    shard_id: int
    events_processed: int = 0
    batches_consumed: int = 0
    queue_high_water: int = 0
    processing: StageTiming = field(default_factory=StageTiming)

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def observe_batch(self, events: int, seconds: float) -> None:
        self.events_processed += events
        self.batches_consumed += 1
        self.processing.observe(seconds)

    def __repr__(self) -> str:
        return (
            f"WorkerLaneMetrics(shard={self.shard_id}, "
            f"events={self.events_processed}, "
            f"batches={self.batches_consumed}, "
            f"queue_hw={self.queue_high_water})"
        )


@dataclass
class NetworkMetrics:
    """Counters of the network data plane (ingestion and match delivery).

    One object is shared by every network endpoint of a pipeline — the
    socket/HTTP ingestion servers count arrivals (accepted into the push
    queue, rejected under backpressure, dropped as duplicates of an
    already-ingested sequence number, or invalid), and the acked match
    sinks count deliveries, retries and dead-letter spills.  ``delivery``
    aggregates the wall time of each successful receiver round trip.
    """

    events_accepted: int = 0
    events_rejected: int = 0
    events_duplicate: int = 0
    events_invalid: int = 0
    matches_delivered: int = 0
    delivery_retries: int = 0
    dead_letters: int = 0
    delivery: StageTiming = field(default_factory=StageTiming)

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary of the counters (the ``/network`` endpoint body)."""
        return {
            "events_accepted": self.events_accepted,
            "events_rejected": self.events_rejected,
            "events_duplicate": self.events_duplicate,
            "events_invalid": self.events_invalid,
            "matches_delivered": self.matches_delivered,
            "delivery_retries": self.delivery_retries,
            "dead_letters": self.dead_letters,
            "delivery_ms_mean": self.delivery.mean_seconds * 1e3,
            "delivery_ms_max": self.delivery.max_seconds * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"NetworkMetrics(accepted={self.events_accepted}, "
            f"rejected={self.events_rejected}, "
            f"delivered={self.matches_delivered}, "
            f"retries={self.delivery_retries}, "
            f"dead_letters={self.dead_letters})"
        )


@dataclass
class PipelineMetrics:
    """Counters and per-stage timings of one pipeline run.

    ``source`` measures time spent pulling events (including any rate-limit
    sleeps and file-tail polling), ``engine`` the per-event detection work
    (for worker backends: the hand-off into the shard queues), ``sink`` the
    per-event match emission, and ``checkpoint`` each state snapshot.  Queue
    metrics describe the staging buffer between the source and the engine;
    ``workers`` holds one :class:`WorkerLaneMetrics` per shard worker when a
    multi-core backend is attached.
    """

    source: StageTiming = field(default_factory=StageTiming)
    engine: StageTiming = field(default_factory=StageTiming)
    sink: StageTiming = field(default_factory=StageTiming)
    checkpoint: StageTiming = field(default_factory=StageTiming)
    #: Event-time lag of each arrival behind the stream's high-water mark
    #: (the maximum timestamp seen so far), in stream-time units (not
    #: seconds) — the actual disorder the ordering stage is absorbing: 0
    #: for an in-order arrival, up to ``max_lateness`` (and beyond, for
    #: late events) under disorder.  Only populated when an ordering stage
    #: is configured.
    watermark_lag: StageTiming = field(default_factory=StageTiming)
    events_ingested: int = 0
    events_processed: int = 0
    events_shed: int = 0
    #: Events that arrived behind the watermark (dropped or side-routed by
    #: the configured late policy).
    late_events: int = 0
    matches_emitted: int = 0
    checkpoints_written: int = 0
    #: Bytes persisted by checkpointing (total and most recent file): the
    #: gauge the full-vs-delta checkpoint comparison is measured by.
    checkpoint_bytes_written: int = 0
    last_checkpoint_bytes: int = 0
    queue_high_water: int = 0
    reorder_depth_high_water: int = 0
    #: High-water mark of the engine's live partial-match population —
    #: the memory-pressure quantity the paper's cost model minimises.
    #: Sampled at checkpoint cuts and end-of-run (never per event).
    partial_matches_high_water: int = 0
    workers: Dict[int, WorkerLaneMetrics] = field(default_factory=dict)

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def observe_partial_matches(self, count: int) -> None:
        """Record one sample of the live partial-match population."""
        if count > self.partial_matches_high_water:
            self.partial_matches_high_water = count

    def observe_checkpoint_bytes(self, size: int) -> None:
        """Account one persisted checkpoint (or delta) file."""
        self.checkpoint_bytes_written += int(size)
        self.last_checkpoint_bytes = int(size)

    @property
    def checkpoint_bytes_mean(self) -> float:
        """Mean bytes per persisted checkpoint file."""
        if self.checkpoints_written == 0:
            return 0.0
        return self.checkpoint_bytes_written / self.checkpoints_written

    def observe_watermark_lag(self, lag: float, reorder_depth: int) -> None:
        """Record one arrival's event-time lag and the reorder occupancy."""
        self.watermark_lag.observe(lag)
        if reorder_depth > self.reorder_depth_high_water:
            self.reorder_depth_high_water = reorder_depth

    def worker_lane(self, shard_id: int) -> WorkerLaneMetrics:
        """The (created-on-first-use) lane gauges for one shard worker."""
        lane = self.workers.get(shard_id)
        if lane is None:
            lane = self.workers[shard_id] = WorkerLaneMetrics(shard_id=shard_id)
        return lane

    @property
    def shed_fraction(self) -> float:
        if self.events_ingested == 0:
            return 0.0
        return self.events_shed / self.events_ingested

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary representation used by report tables.

        The column set is **stable**: every key is present in every row,
        zero-filled when the corresponding feature (checkpointing,
        event-time ordering, worker lanes) was not active — so the rows of
        one sweep always agree on headers and concatenate into a
        rectangular CSV.
        """
        lanes = list(self.workers.values())
        return {
            "events_ingested": float(self.events_ingested),
            "events": float(self.events_processed),
            "matches": float(self.matches_emitted),
            "shed": float(self.events_shed),
            "shed_fraction": self.shed_fraction,
            "late_events": float(self.late_events),
            "queue_high_water": float(self.queue_high_water),
            "checkpoints": float(self.checkpoints_written),
            "source_ms_mean": self.source.mean_seconds * 1e3,
            "engine_ms_mean": self.engine.mean_seconds * 1e3,
            "engine_ms_max": self.engine.max_seconds * 1e3,
            "sink_ms_mean": self.sink.mean_seconds * 1e3,
            "checkpoint_bytes": float(self.checkpoint_bytes_written),
            "checkpoint_bytes_mean": self.checkpoint_bytes_mean,
            "checkpoint_ms_mean": self.checkpoint.mean_seconds * 1e3,
            "checkpoint_ms_max": self.checkpoint.max_seconds * 1e3,
            "watermark_lag_mean": self.watermark_lag.mean_seconds,
            "watermark_lag_max": self.watermark_lag.max_seconds,
            "reorder_depth_hw": float(self.reorder_depth_high_water),
            "partial_matches_high_water": float(self.partial_matches_high_water),
            "workers": float(len(lanes)),
            "worker_queue_hw_max": float(
                max((lane.queue_high_water for lane in lanes), default=0)
            ),
            "worker_batch_ms_mean": (
                sum(lane.processing.total_seconds for lane in lanes)
                / max(1, sum(lane.processing.observations for lane in lanes))
            )
            * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"PipelineMetrics(processed={self.events_processed}, "
            f"matches={self.matches_emitted}, shed={self.events_shed}, "
            f"queue_hw={self.queue_high_water}, "
            f"engine={self.engine!r})"
        )

"""Per-stage metrics of the streaming pipeline.

The streaming runtime (:mod:`repro.streaming`) is a staged dataflow —
``source → buffer → engine → sinks`` — and each stage is instrumented
separately so an operator can see *where* a slow pipeline spends its time:
a source-bound pipeline (waiting on rate limiting or file tailing) looks
completely different from an engine-bound one, and a growing queue depth is
the early warning sign of sustained overload.

:class:`StageTiming` is a tiny streaming aggregator (count / total / max)
rather than a histogram: it costs two floats per observation, which matters
on the per-event hot path, while still answering the questions the
experiments report (mean and worst-case stage latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StageTiming:
    """Streaming latency aggregate for one pipeline stage."""

    observations: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.observations += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        if self.observations == 0:
            return 0.0
        return self.total_seconds / self.observations

    def merge(self, other: "StageTiming") -> "StageTiming":
        return StageTiming(
            observations=self.observations + other.observations,
            total_seconds=self.total_seconds + other.total_seconds,
            max_seconds=max(self.max_seconds, other.max_seconds),
        )

    def __repr__(self) -> str:
        return (
            f"StageTiming(n={self.observations}, "
            f"mean={self.mean_seconds * 1e3:.3f}ms, "
            f"max={self.max_seconds * 1e3:.3f}ms)"
        )


@dataclass
class PipelineMetrics:
    """Counters and per-stage timings of one pipeline run.

    ``source`` measures time spent pulling events (including any rate-limit
    sleeps and file-tail polling), ``engine`` the per-event detection work,
    ``sink`` the per-event match emission, and ``checkpoint`` each state
    snapshot.  Queue metrics describe the staging buffer between the source
    and the engine.
    """

    source: StageTiming = field(default_factory=StageTiming)
    engine: StageTiming = field(default_factory=StageTiming)
    sink: StageTiming = field(default_factory=StageTiming)
    checkpoint: StageTiming = field(default_factory=StageTiming)
    events_ingested: int = 0
    events_processed: int = 0
    events_shed: int = 0
    matches_emitted: int = 0
    checkpoints_written: int = 0
    queue_high_water: int = 0

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    @property
    def shed_fraction(self) -> float:
        if self.events_ingested == 0:
            return 0.0
        return self.events_shed / self.events_ingested

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary representation used by report tables."""
        return {
            "events": float(self.events_processed),
            "matches": float(self.matches_emitted),
            "shed": float(self.events_shed),
            "shed_fraction": self.shed_fraction,
            "queue_high_water": float(self.queue_high_water),
            "checkpoints": float(self.checkpoints_written),
            "source_ms_mean": self.source.mean_seconds * 1e3,
            "engine_ms_mean": self.engine.mean_seconds * 1e3,
            "engine_ms_max": self.engine.max_seconds * 1e3,
            "sink_ms_mean": self.sink.mean_seconds * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"PipelineMetrics(processed={self.events_processed}, "
            f"matches={self.matches_emitted}, shed={self.events_shed}, "
            f"queue_hw={self.queue_high_water}, "
            f"engine={self.engine!r})"
        )

"""Plan-build-time condition compilation (the hot-path executor).

Public surface of the ``repro.compile`` subsystem:

* :mod:`~repro.compile.kernels` — lowering of individual conditions to
  specialized closures (local / step / join shapes, safe fallbacks);
* :mod:`~repro.compile.columnar` — struct-of-arrays batch views swept by
  the columnar variants of local kernels;
* :mod:`~repro.compile.index` — equality-predicate hash indexes used to
  prune join-side candidates before any kernel runs;
* :mod:`~repro.compile.plan_kernels` — the per-plan compiled artifact
  the engines dispatch through, rebuilt transparently on unpickle.

This package sits below :mod:`repro.engine` in the import graph: it may
import conditions/plans/events but never the engines.
"""

from repro.compile.columnar import EventBatchColumns
from repro.compile.index import EqualityIndex, IndexSpec, find_equality_index_spec
from repro.compile.kernels import (
    CompiledKernel,
    compile_join_kernel,
    compile_local_kernel,
    compile_step_kernel,
    report_pairs_for,
    specialization_counts,
)
from repro.compile.plan_kernels import (
    COMPILE_MODES,
    CompiledPlanKernels,
    StepKernels,
    kernels_reused_total,
    plans_compiled_total,
    validate_compile_mode,
)

__all__ = [
    "COMPILE_MODES",
    "CompiledKernel",
    "CompiledPlanKernels",
    "EqualityIndex",
    "EventBatchColumns",
    "IndexSpec",
    "StepKernels",
    "compile_join_kernel",
    "compile_local_kernel",
    "compile_step_kernel",
    "find_equality_index_spec",
    "kernels_reused_total",
    "plans_compiled_total",
    "report_pairs_for",
    "specialization_counts",
    "validate_compile_mode",
]

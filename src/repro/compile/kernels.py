"""Condition lowering: specialized closures for the evaluation hot path.

The interpreted hot path pays, per candidate pairing, a virtual
``Condition.evaluate(binding)`` dispatch, a trial-``dict`` copy of the
partial match's bindings, a ``variables`` frozenset recomputation and a
``sorted()`` per statistics report.  This module lowers each atomic
conjunct — *once, at plan-build time* — into a specialized closure with
pre-resolved attribute names, comparison operator and variable roles, so
the per-pairing cost is a couple of attribute lookups and one operator
call.

Three kernel shapes match the three places conditions fire:

* **local** — ``fn(event) -> bool`` for single-variable acceptance
  predicates (NFA buffer admission, tree leaves).  Local kernels also
  carry a ``rows_fn(columns, rows) -> List[bool]`` columnar variant that
  sweeps a struct-of-arrays :class:`~repro.compile.columnar.EventBatchColumns`
  view and returns an accept bitmask for a whole batch.
* **step** — ``fn(bindings, event) -> bool`` for the conditions that
  become fully bound when an NFA partial match is extended by one event.
* **join** — ``fn(left_bindings, right_bindings) -> bool`` for the
  conditions linking two sibling sub-matches at a tree node.

Every shape has a *safe fallback*: conditions the compiler does not
understand structurally (user lambdas, disjunctions, negations, unknown
subclasses) are wrapped in a closure that reproduces the interpreted
call exactly — build the trial binding, call ``evaluate`` — so compiled
mode never changes what is detected, only how fast.

Kernels are **not** picklable (they close over bound methods and
operator functions); the :class:`~repro.compile.plan_kernels.CompiledPlanKernels`
holder drops them on pickling and recompiles from the plan on restore.

When a profile is attached (engine built with ``introspect=True``) the
kernel itself is timed — the profile rows aggregate compiled-kernel time
under the same ``cache_key`` the interpreted ``ProfiledCondition``
wrappers use, so hotspot reports stay comparable across modes.
"""

from __future__ import annotations

import operator
import time
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from repro.conditions import (
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    Condition,
)

__all__ = [
    "CompiledKernel",
    "compile_local_kernel",
    "compile_step_kernel",
    "compile_join_kernel",
    "report_pairs_for",
]

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def report_pairs_for(variables: Iterable[str]) -> Tuple[Tuple[str, str], ...]:
    """The (sorted) variable pairs a condition outcome is reported under.

    Precomputed at compile time so the hot path never calls ``sorted``;
    mirrors :func:`repro.engine.semantics._report_condition`.
    """
    names = sorted(variables)
    if len(names) == 1:
        return ((names[0], names[0]),)
    return tuple(
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    )


class CompiledKernel:
    """One lowered conjunct: the closure plus its reporting metadata.

    ``specialized`` distinguishes structurally compiled kernels from
    interpreted-fallback wrappers (surfaced in benchmarks and tests).
    """

    __slots__ = ("condition", "fn", "rows_fn", "report_pairs", "specialized")

    def __init__(
        self,
        condition: Condition,
        fn: Callable,
        report_pairs: Tuple[Tuple[str, str], ...],
        specialized: bool,
        rows_fn: Optional[Callable] = None,
    ):
        self.condition = condition
        self.fn = fn
        self.rows_fn = rows_fn
        self.report_pairs = report_pairs
        self.specialized = specialized

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "specialized" if self.specialized else "fallback"
        return f"CompiledKernel({self.condition!r}, {kind})"


# ----------------------------------------------------------------------
# Profiling wrappers (applied only when a profile object is attached)
# ----------------------------------------------------------------------
def _timed1(fn: Callable, profile) -> Callable:
    def timed(a, _fn=fn, _profile=profile, _clock=time.perf_counter):
        started = _clock()
        outcome = _fn(a)
        _profile.seconds += _clock() - started
        _profile.calls += 1
        if outcome:
            _profile.passes += 1
        return outcome

    return timed


def _timed2(fn: Callable, profile) -> Callable:
    def timed(a, b, _fn=fn, _profile=profile, _clock=time.perf_counter):
        started = _clock()
        outcome = _fn(a, b)
        _profile.seconds += _clock() - started
        _profile.calls += 1
        if outcome:
            _profile.passes += 1
        return outcome

    return timed


def _timed_rows(rows_fn: Callable, profile) -> Callable:
    def timed(columns, rows, _fn=rows_fn, _profile=profile, _clock=time.perf_counter):
        started = _clock()
        outcomes = _fn(columns, rows)
        _profile.seconds += _clock() - started
        _profile.calls += len(outcomes)
        _profile.passes += sum(outcomes)
        return outcomes

    return timed


# ----------------------------------------------------------------------
# Local kernels: fn(event) -> bool  (+ columnar rows_fn)
# ----------------------------------------------------------------------
def compile_local_kernel(
    condition: Condition, variable: str, profile=None
) -> CompiledKernel:
    """Lower a single-variable condition for buffer/leaf admission."""
    specialized = (
        isinstance(condition, AttributeThresholdCondition)
        and condition.variable == variable
    )
    if specialized:
        op = _OPS[condition.op_symbol]
        attribute = condition.attribute
        value = condition.value

        def fn(event, _op=op, _attr=attribute, _value=value):
            attr = event.get(_attr)
            return attr is not None and _op(attr, _value)

        def rows_fn(columns, rows, _op=op, _attr=attribute, _value=value):
            column = columns.column(_attr)
            return [
                (attr := column[i]) is not None and _op(attr, _value)
                for i in rows
            ]

    else:

        def fn(event, _condition=condition, _variable=variable):
            return bool(_condition.evaluate({_variable: event}))

        def rows_fn(columns, rows, _condition=condition, _variable=variable):
            events = columns.events
            return [
                bool(_condition.evaluate({_variable: events[i]})) for i in rows
            ]

    if profile is not None:
        fn = _timed1(fn, profile)
        rows_fn = _timed_rows(rows_fn, profile)
    return CompiledKernel(
        condition, fn, ((variable, variable),), specialized, rows_fn
    )


# ----------------------------------------------------------------------
# Step kernels: fn(bindings, event) -> bool  (NFA extension edges)
# ----------------------------------------------------------------------
def compile_step_kernel(
    condition: Condition, new_variable: str, profile=None
) -> CompiledKernel:
    """Lower a condition that becomes fully bound at one NFA plan step.

    ``bindings`` holds single events during matching (Kleene bindings
    become lists only at finalize time, which stays interpreted); a cheap
    list guard falls back to the interpreted path if that invariant is
    ever broadened.
    """
    pairs = report_pairs_for(condition.variables)
    fn = None
    specialized = False
    if (
        isinstance(condition, AttributeThresholdCondition)
        and condition.variable == new_variable
    ):
        op = _OPS[condition.op_symbol]
        attribute = condition.attribute
        value = condition.value
        specialized = True

        def fn(bindings, event, _op=op, _attr=attribute, _value=value):
            attr = event.get(_attr)
            return attr is not None and _op(attr, _value)

    elif isinstance(condition, AttributeComparisonCondition):
        op = _OPS[condition.op_symbol]
        left_variable = condition.left_variable
        left_attribute = condition.left_attribute
        right_variable = condition.right_variable
        right_attribute = condition.right_attribute
        if left_variable == new_variable:
            specialized = True

            def fn(
                bindings,
                event,
                _condition=condition,
                _new=new_variable,
                _op=op,
                _la=left_attribute,
                _rv=right_variable,
                _ra=right_attribute,
            ):
                other = bindings[_rv]
                if isinstance(other, list):
                    trial = dict(bindings)
                    trial[_new] = event
                    return bool(_condition.evaluate(trial))
                left_value = event.get(_la)
                if left_value is None:
                    return False
                right_value = other.get(_ra)
                return right_value is not None and _op(left_value, right_value)

        elif right_variable == new_variable:
            specialized = True

            def fn(
                bindings,
                event,
                _condition=condition,
                _new=new_variable,
                _op=op,
                _lv=left_variable,
                _la=left_attribute,
                _ra=right_attribute,
            ):
                other = bindings[_lv]
                if isinstance(other, list):
                    trial = dict(bindings)
                    trial[_new] = event
                    return bool(_condition.evaluate(trial))
                left_value = other.get(_la)
                if left_value is None:
                    return False
                right_value = event.get(_ra)
                return right_value is not None and _op(left_value, right_value)

    if fn is None:

        def fn(bindings, event, _condition=condition, _new=new_variable):
            trial = dict(bindings)
            trial[_new] = event
            return bool(_condition.evaluate(trial))

    if profile is not None:
        fn = _timed2(fn, profile)
    return CompiledKernel(condition, fn, pairs, specialized)


# ----------------------------------------------------------------------
# Join kernels: fn(left_bindings, right_bindings) -> bool  (tree nodes)
# ----------------------------------------------------------------------
def compile_join_kernel(
    condition: Condition,
    left_variables: FrozenSet[str],
    right_variables: FrozenSet[str],
    profile=None,
) -> CompiledKernel:
    """Lower a condition linking two sibling sub-matches of a tree node."""
    pairs = report_pairs_for(condition.variables)
    fn = None
    specialized = False
    if isinstance(condition, AttributeComparisonCondition):
        op = _OPS[condition.op_symbol]
        left_variable = condition.left_variable
        left_attribute = condition.left_attribute
        right_variable = condition.right_variable
        right_attribute = condition.right_attribute
        if left_variable in left_variables and right_variable in right_variables:
            lhs_side, rhs_side = 0, 1
        elif left_variable in right_variables and right_variable in left_variables:
            lhs_side, rhs_side = 1, 0
        else:  # pragma: no cover - conditions_between guarantees coverage
            lhs_side = rhs_side = None
        if lhs_side is not None:
            specialized = True

            def fn(
                left_bindings,
                right_bindings,
                _condition=condition,
                _op=op,
                _lv=left_variable,
                _la=left_attribute,
                _rv=right_variable,
                _ra=right_attribute,
                _lhs=lhs_side,
                _rhs=rhs_side,
            ):
                sides = (left_bindings, right_bindings)
                lhs = sides[_lhs][_lv]
                rhs = sides[_rhs][_rv]
                if isinstance(lhs, list) or isinstance(rhs, list):
                    combined = dict(left_bindings)
                    combined.update(right_bindings)
                    return bool(_condition.evaluate(combined))
                left_value = lhs.get(_la)
                if left_value is None:
                    return False
                right_value = rhs.get(_ra)
                return right_value is not None and _op(left_value, right_value)

    if fn is None:

        def fn(left_bindings, right_bindings, _condition=condition):
            combined = dict(left_bindings)
            combined.update(right_bindings)
            return bool(_condition.evaluate(combined))

    if profile is not None:
        fn = _timed2(fn, profile)
    return CompiledKernel(condition, fn, pairs, specialized)


def specialization_counts(kernels: Iterable[CompiledKernel]) -> Tuple[int, int]:
    """``(specialized, fallback)`` totals for a kernel collection."""
    compiled = 0
    fallback = 0
    for kernel in kernels:
        if kernel.specialized:
            compiled += 1
        else:
            fallback += 1
    return compiled, fallback


def kernel_list(kernels: Iterable[CompiledKernel]) -> List[CompiledKernel]:
    """Materialize a kernel iterable (helper for plan builders)."""
    return list(kernels)

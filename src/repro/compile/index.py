"""Equality-predicate hash index for join-side candidate pruning.

When the plan couples a new variable to an already-bound one through an
equality predicate (``a.entity_id == b.entity_id``), the interpreted
engine still enumerates *every* stored candidate and rejects most of
them inside the condition call.  This module buckets candidates by their
equality-key value at insert time, so an extension probe touches only
the bucket that can possibly satisfy the predicate.

Correctness does not depend on the index: every surviving candidate is
still run through the full compiled kernel chain (including the equality
itself), so a too-coarse bucket admits false positives harmlessly, and
dict key semantics (``hash``/``==`` consistency) guarantee no false
negatives.  Values that cannot be hashed degrade gracefully:

* an unhashable **stored** key sends the item to a fallback list that is
  scanned on every probe;
* an unhashable **probe** key disables pruning for that probe only
  (the caller scans everything);
* a probe key of ``None`` — the attribute is absent — prunes *all*
  bucketed items, because an equality over a missing attribute can never
  hold (mirroring the interpreted ``evaluate`` returning ``False``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.conditions import AttributeComparisonCondition

__all__ = ["EqualityIndex", "IndexSpec", "find_equality_index_spec"]

_EMPTY: Tuple = ()


class IndexSpec:
    """Which equality predicate a plan edge is indexed on.

    ``bound_variable.bound_attribute == <new_variable>.event_attribute`` —
    orientation already resolved so both maintenance sites know exactly
    which attribute to key on without re-inspecting the condition.
    ``pair`` is the sorted variable pair pruned candidates are reported
    under (as bulk failed attempts) to the statistics collector.
    """

    __slots__ = ("bound_variable", "bound_attribute", "event_attribute", "pair")

    def __init__(
        self,
        bound_variable: str,
        bound_attribute: str,
        new_variable: str,
        event_attribute: str,
    ):
        self.bound_variable = bound_variable
        self.bound_attribute = bound_attribute
        self.event_attribute = event_attribute
        self.pair = tuple(sorted((bound_variable, new_variable)))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IndexSpec({self.bound_variable}.{self.bound_attribute} == "
            f"new.{self.event_attribute})"
        )


def find_equality_index_spec(
    conditions: Sequence, new_variable: str, bound_variables: Sequence[str]
) -> Optional[IndexSpec]:
    """Pick the equality predicate (if any) to index a plan edge on.

    Scans the conditions that become applicable at the edge and returns a
    spec for the first strict equality coupling the new variable to a
    single already-bound one.  Only one index per edge: additional
    equalities still filter inside the kernels.
    """
    bound = set(bound_variables)
    for condition in conditions:
        if not isinstance(condition, AttributeComparisonCondition):
            continue
        if condition.op_symbol != "==":
            continue
        if condition.left_variable == new_variable and condition.right_variable in bound:
            return IndexSpec(
                condition.right_variable,
                condition.right_attribute,
                new_variable,
                condition.left_attribute,
            )
        if condition.right_variable == new_variable and condition.left_variable in bound:
            return IndexSpec(
                condition.left_variable,
                condition.left_attribute,
                new_variable,
                condition.right_attribute,
            )
    return None


class EqualityIndex:
    """Hash buckets over one equality key, with unhashable fallback."""

    __slots__ = ("_buckets", "_fallback", "size")

    def __init__(self):
        self._buckets: Dict[object, List] = {}
        self._fallback: List = []
        self.size = 0

    def add(self, key, item) -> None:
        """Bucket ``item`` under ``key`` (fallback list if unhashable)."""
        try:
            self._buckets.setdefault(key, []).append(item)
        except TypeError:
            self._fallback.append(item)
        self.size += 1

    def add_unkeyed(self, item) -> None:
        """Store an item that must survive every probe (e.g. list binding)."""
        self._fallback.append(item)
        self.size += 1

    def probe(self, key) -> Tuple[Optional[Sequence], Sequence, int]:
        """Candidates for ``key`` as ``(primary, fallback, pruned)``.

        ``primary is None`` signals the probe key itself is unhashable and
        the caller must scan everything (pruned = 0).  A ``None`` key
        returns no primary candidates: equality over a missing attribute
        cannot hold.
        """
        if key is None:
            return _EMPTY, self._fallback, self.size - len(self._fallback)
        try:
            primary = self._buckets.get(key, _EMPTY)
        except TypeError:
            return None, self._fallback, 0
        return primary, self._fallback, self.size - len(primary) - len(self._fallback)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EqualityIndex({self.size} items, {len(self._buckets)} buckets, "
            f"{len(self._fallback)} unhashable)"
        )

"""Columnar (struct-of-arrays) view over one event batch.

Batch-mode ingestion hands the engines a list of events.  The interpreted
path re-reads each event's payload dict once per acceptance predicate; a
columnar view instead materialises each referenced attribute **once per
batch** into a flat list, so compiled local kernels sweep contiguous
Python lists instead of chasing ``Event -> payload -> key`` indirections
per call.

Columns are materialised lazily: only the attributes some compiled
kernel actually touches are ever extracted, and the per-type row index is
built on first use, so patterns with few event types pay nothing for the
types they ignore.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["EventBatchColumns"]


class EventBatchColumns:
    """Lazy struct-of-arrays projection of a batch of events."""

    __slots__ = ("events", "_columns", "_rows_by_type")

    def __init__(self, events: Sequence):
        self.events: Tuple = tuple(events)
        self._columns: Dict[str, List] = {}
        self._rows_by_type: Dict[str, List[int]] = None

    def __len__(self) -> int:
        return len(self.events)

    def column(self, attribute: str) -> List:
        """The attribute's values across the whole batch (None if absent)."""
        column = self._columns.get(attribute)
        if column is None:
            column = self._columns[attribute] = [
                event.get(attribute) for event in self.events
            ]
        return column

    def rows_by_type(self) -> Dict[str, List[int]]:
        """Row indices grouped by event type, in arrival order."""
        rows = self._rows_by_type
        if rows is None:
            rows = {}
            for i, event in enumerate(self.events):
                rows.setdefault(event.type_name, []).append(i)
            self._rows_by_type = rows
        return rows

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the final event (bulk statistics are stamped here)."""
        return self.events[-1].timestamp

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventBatchColumns({len(self.events)} events, "
            f"{len(self._columns)} columns materialised)"
        )

"""Plan-level kernel compilation: one compiled artifact per evaluation plan.

:class:`CompiledPlanKernels` is built once when an engine adopts a plan
(initial construction, adaptation replan, or checkpoint restore) and
pre-resolves everything the interpreted hot path recomputes per event:

* **steps** — for an order-based (NFA) plan, the conditions that become
  fully bound at each extension step ``order[k]``, already lowered to
  :mod:`~repro.compile.kernels` closures, plus the precomputed temporal
  order checks for SEQ patterns and (in ``indexed`` mode) the equality
  predicate the step's candidate stores are bucketed on;
* **joins** — for a tree plan, the lowered kernels linking each child
  node to its sibling, in both join orientations;
* **locals** — per-variable acceptance kernels with columnar ``rows_fn``
  variants for whole-batch sweeps.

The statistics contract matches the interpreted path exactly: when a
collector is attached, *every* kernel of a step/join is evaluated even
after the first failure and each outcome is reported under the same
sorted variable pairs :func:`repro.engine.semantics._report_condition`
uses, so selectivity estimates — and therefore planner decisions — are
mode-independent.  Without a collector, evaluation short-circuits.

Pickling drops the (unpicklable) closures and keeps only the plan, the
profiler and the mode; ``__setstate__`` recompiles.  The module-level
:func:`plans_compiled_total` counter exists so tests can prove a restored
engine really did recompile rather than deserialize stale kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compile.columnar import EventBatchColumns
from repro.compile.index import IndexSpec, find_equality_index_spec
from repro.compile.kernels import (
    CompiledKernel,
    compile_join_kernel,
    compile_local_kernel,
    compile_step_kernel,
)
from repro.errors import EngineError
from repro.plans import OrderBasedPlan, TreeBasedPlan

__all__ = [
    "COMPILE_MODES",
    "CompiledPlanKernels",
    "StepKernels",
    "kernels_reused_total",
    "plans_compiled_total",
    "validate_compile_mode",
]

#: Recognised values for the engine ``compile_mode`` knob.
COMPILE_MODES = ("interpreted", "compiled", "indexed")

#: Process-wide count of plan compilations (inspected by checkpoint tests
#: to prove restored engines recompile their kernels).
_PLANS_COMPILED = 0


def plans_compiled_total() -> int:
    """How many plan compilations have run in this process."""
    return _PLANS_COMPILED


#: Process-wide cache of lowered condition kernels, keyed by
#: ``(shape, variable, condition.cache_key())``.  Kernels are pure
#: closures over immutable conditions, so identical conditions — common
#: in multi-pattern serving, where many registered patterns repeat the
#: same predicates — compile once and are shared across plans and
#: engines.  Opaque conditions carry per-instance cache keys, so only
#: provably identical predicates ever share.  Profiled kernels are never
#: cached (the profile wrapper is per-condition-instance).
_KERNEL_CACHE: Dict[Tuple, CompiledKernel] = {}
_KERNEL_CACHE_CAP = 4096
_KERNELS_REUSED = 0


def kernels_reused_total() -> int:
    """How many kernel compilations were avoided by the shared cache."""
    return _KERNELS_REUSED


def _cached_kernel(shape: str, condition, variable: str, profile, build):
    global _KERNELS_REUSED
    if profile is not None:
        return build()
    try:
        key = (shape, variable, repr(condition.cache_key()))
    except Exception:
        return build()
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        _KERNELS_REUSED += 1
        return kernel
    kernel = build()
    if len(_KERNEL_CACHE) < _KERNEL_CACHE_CAP:
        _KERNEL_CACHE[key] = kernel
    return kernel


def validate_compile_mode(mode: str) -> str:
    """Validate and normalise a ``compile_mode`` value."""
    if mode not in COMPILE_MODES:
        raise EngineError(
            f"unknown compile mode {mode!r}; expected one of {COMPILE_MODES}"
        )
    return mode


class StepKernels:
    """Everything precomputed for extending a partial match of size ``k``.

    ``order_checks`` holds ``(bound_variable, bound_comes_before)`` pairs
    for SEQ patterns (empty for conjunctions, where any order passes);
    ``index_spec`` is the equality predicate candidate stores for this
    step are bucketed on, or ``None`` when un-indexed.
    """

    __slots__ = ("variable", "kernels", "order_checks", "index_spec")

    def __init__(
        self,
        variable: str,
        kernels: Tuple[CompiledKernel, ...],
        order_checks: Tuple[Tuple[str, bool], ...],
        index_spec: Optional[IndexSpec],
    ):
        self.variable = variable
        self.kernels = kernels
        self.order_checks = order_checks
        self.index_spec = index_spec

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        indexed = f", indexed on {self.index_spec}" if self.index_spec else ""
        return f"StepKernels({self.variable}, {len(self.kernels)} kernels{indexed})"


class CompiledPlanKernels:
    """Compiled kernels for one evaluation plan (NFA order or tree)."""

    def __init__(self, plan, profiler=None, indexed: bool = False):
        self.plan = plan
        self.profiler = profiler
        self.indexed = indexed
        self._build()

    # ------------------------------------------------------------------
    # Pickling: closures cannot cross process/checkpoint boundaries, so
    # only the recipe travels and the kernels are rebuilt on arrival.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"plan": self.plan, "profiler": self.profiler, "indexed": self.indexed}

    def __setstate__(self, state):
        self.plan = state["plan"]
        self.profiler = state["profiler"]
        self.indexed = state["indexed"]
        self._build()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _profile_for(self, condition):
        if self.profiler is None:
            return None
        return self.profiler.profile_for(condition)

    def _build(self) -> None:
        global _PLANS_COMPILED
        _PLANS_COMPILED += 1
        plan = self.plan
        pattern = plan.pattern
        conditions = pattern.conditions
        self.window = pattern.window

        self.variable_types: Dict[str, str] = {}
        self.local_kernels: Dict[str, Tuple[CompiledKernel, ...]] = {}
        for item in pattern.positive_items:
            variable = item.variable
            self.variable_types[variable] = item.event_type.name
            local_kernels = []
            for c in conditions.single_variable_conditions(variable):
                profile = self._profile_for(c)
                local_kernels.append(
                    _cached_kernel(
                        "local",
                        c,
                        variable,
                        profile,
                        lambda c=c, v=variable, p=profile: compile_local_kernel(
                            c, v, p
                        ),
                    )
                )
            self.local_kernels[variable] = tuple(local_kernels)

        self.steps: Optional[List[StepKernels]] = None
        self.join_kernels: Optional[Dict[int, Tuple[CompiledKernel, ...]]] = None
        if isinstance(plan, OrderBasedPlan):
            self._build_steps(plan)
        elif isinstance(plan, TreeBasedPlan):
            self._build_joins(plan)
        else:
            raise EngineError(
                f"cannot compile kernels for plan type {type(plan).__name__}"
            )

    def _build_steps(self, plan: OrderBasedPlan) -> None:
        pattern = plan.pattern
        conditions = pattern.conditions
        is_sequence = pattern.is_sequence()
        steps: List[StepKernels] = []
        for position, variable in enumerate(plan.order):
            bound = plan.order[:position]
            newly = conditions.newly_applicable(bound, variable)
            step_kernels = []
            for c in newly:
                profile = self._profile_for(c)
                step_kernels.append(
                    _cached_kernel(
                        "step",
                        c,
                        variable,
                        profile,
                        lambda c=c, v=variable, p=profile: compile_step_kernel(
                            c, v, p
                        ),
                    )
                )
            kernels = tuple(step_kernels)
            order_checks: Tuple[Tuple[str, bool], ...] = ()
            if is_sequence:
                here = pattern.positive_index(variable)
                order_checks = tuple(
                    (u, pattern.positive_index(u) < here) for u in bound
                )
            index_spec = None
            if self.indexed and position > 0:
                index_spec = find_equality_index_spec(newly, variable, bound)
            steps.append(StepKernels(variable, kernels, order_checks, index_spec))
        self.steps = steps

    def _build_joins(self, plan: TreeBasedPlan) -> None:
        conditions = plan.pattern.conditions
        joins: Dict[int, Tuple[CompiledKernel, ...]] = {}
        for node in plan.internal_nodes_bottom_up():
            left_vars = frozenset(node.left.variables())
            right_vars = frozenset(node.right.variables())
            linking = conditions.conditions_between(left_vars, right_vars)
            # Both orientations: the tree engine keys the kernel lookup by
            # the node the *new* sub-match arrived at, with that side's
            # bindings passed as the left argument.
            joins[id(node.left)] = tuple(
                compile_join_kernel(c, left_vars, right_vars, self._profile_for(c))
                for c in linking
            )
            joins[id(node.right)] = tuple(
                compile_join_kernel(c, right_vars, left_vars, self._profile_for(c))
                for c in linking
            )
        self.join_kernels = joins

    # ------------------------------------------------------------------
    # Evaluation entry points (the compiled hot path)
    # ------------------------------------------------------------------
    def evaluate_local(self, variable: str, event, collector) -> bool:
        """Single-variable acceptance kernels for one event."""
        kernels = self.local_kernels.get(variable, ())
        if collector is None:
            for kernel in kernels:
                if not kernel.fn(event):
                    return False
            return True
        satisfied = True
        timestamp = event.timestamp
        for kernel in kernels:
            outcome = kernel.fn(event)
            collector.observe_condition(variable, variable, timestamp, outcome)
            if not outcome:
                satisfied = False
        return satisfied

    def evaluate_step(self, step: StepKernels, bindings, event, collector, now) -> bool:
        """The conditions newly bound when ``event`` extends a partial match."""
        if collector is None:
            for kernel in step.kernels:
                if not kernel.fn(bindings, event):
                    return False
            return True
        satisfied = True
        for kernel in step.kernels:
            outcome = kernel.fn(bindings, event)
            for a, b in kernel.report_pairs:
                collector.observe_condition(a, b, now, outcome)
            if not outcome:
                satisfied = False
        return satisfied

    def evaluate_join(self, node_id: int, left_bindings, right_bindings, collector, now) -> bool:
        """The conditions linking a node's sub-match to its sibling's."""
        kernels = self.join_kernels.get(node_id, ())
        if collector is None:
            for kernel in kernels:
                if not kernel.fn(left_bindings, right_bindings):
                    return False
            return True
        satisfied = True
        for kernel in kernels:
            outcome = kernel.fn(left_bindings, right_bindings)
            for a, b in kernel.report_pairs:
                collector.observe_condition(a, b, now, outcome)
            if not outcome:
                satisfied = False
        return satisfied

    def order_respected(self, step: StepKernels, bindings, event) -> bool:
        """SEQ temporal constraint via precomputed before/after relations."""
        timestamp = event.timestamp
        for variable, comes_before in step.order_checks:
            bound = bindings[variable]
            if isinstance(bound, list):
                for bound_event in bound:
                    if comes_before:
                        if not bound_event.timestamp < timestamp:
                            return False
                    elif not timestamp < bound_event.timestamp:
                        return False
            elif comes_before:
                if not bound.timestamp < timestamp:
                    return False
            elif not timestamp < bound.timestamp:
                return False
        return True

    def window_ok(self, min_timestamp: float, max_timestamp: float, event_timestamp: float) -> bool:
        """Window check over a partial match's cached timestamp extremes."""
        window = self.window
        if window == float("inf"):
            return True
        low = min_timestamp if min_timestamp < event_timestamp else event_timestamp
        high = max_timestamp if max_timestamp > event_timestamp else event_timestamp
        return high - low <= window

    def local_verdicts(self, columns: EventBatchColumns, collector) -> Dict[str, List[bool]]:
        """Whole-batch acceptance verdicts per variable (columnar sweep).

        Returns, per positive variable, a batch-length bitmask: ``True``
        at row ``i`` iff event ``i`` has the variable's event type and
        passes all its local kernels.  Condition outcomes are reported in
        bulk, stamped at the batch's final timestamp (boundedly late,
        well inside the statistics window).
        """
        verdicts: Dict[str, List[bool]] = {}
        rows_by_type = columns.rows_by_type()
        length = len(columns)
        for variable, type_name in self.variable_types.items():
            mask = [False] * length
            rows = rows_by_type.get(type_name)
            if rows:
                combined = None
                for kernel in self.local_kernels.get(variable, ()):
                    outcomes = kernel.rows_fn(columns, rows)
                    if collector is not None:
                        collector.observe_condition_bulk(
                            variable,
                            variable,
                            columns.last_timestamp,
                            len(outcomes),
                            sum(outcomes),
                        )
                    if combined is None:
                        combined = outcomes
                    else:
                        combined = [a and b for a, b in zip(combined, outcomes)]
                if combined is None:
                    for row in rows:
                        mask[row] = True
                else:
                    for row, accepted in zip(rows, combined):
                        mask[row] = accepted
            verdicts[variable] = mask
        return verdicts

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        shape = (
            f"{len(self.steps)} steps"
            if self.steps is not None
            else f"{len(self.join_kernels)} join sides"
        )
        mode = "indexed" if self.indexed else "compiled"
        return f"CompiledPlanKernels({self.plan!r}, {shape}, {mode})"
